"""Tests for GMRES / CG / iterative refinement."""

import numpy as np
import pytest

from repro.core.refinement import (
    conjugate_gradient,
    gmres,
    iterative_refinement,
)
from repro.core.solver import Solver
from repro.sparse.generators import (
    convection_diffusion_3d,
    laplacian_2d,
    laplacian_3d,
)
from tests.conftest import tiny_blr_config


def exact_precond(a):
    inv = np.linalg.inv(a.to_dense())
    return lambda r: inv @ r


class TestGmres:
    def test_unpreconditioned_converges(self, rng):
        a = laplacian_2d(4)
        b = rng.standard_normal(a.n)
        res = gmres(a, b, tol=1e-10, maxiter=200, restart=50)
        assert res.converged
        assert res.backward_error <= 1e-10

    def test_exact_preconditioner_one_iteration(self, rng):
        a = laplacian_2d(5)
        b = rng.standard_normal(a.n)
        res = gmres(a, b, precond=exact_precond(a), tol=1e-12, maxiter=20)
        assert res.converged
        assert res.iterations <= 2

    def test_nonsymmetric_system(self, rng):
        a = convection_diffusion_3d(4, peclet=0.7)
        b = rng.standard_normal(a.n)
        res = gmres(a, b, precond=exact_precond(a), tol=1e-12, maxiter=20)
        assert res.converged

    def test_history_starts_at_initial_residual(self, rng):
        a = laplacian_2d(4)
        b = rng.standard_normal(a.n)
        res = gmres(a, b, tol=1e-10, maxiter=5)
        assert res.history[0] == pytest.approx(1.0)  # x0 = 0

    def test_maxiter_respected(self, rng):
        a = laplacian_2d(6)
        b = rng.standard_normal(a.n)
        res = gmres(a, b, tol=1e-16, maxiter=3)
        assert res.iterations <= 3

    def test_zero_rhs(self):
        a = laplacian_2d(3)
        res = gmres(a, np.zeros(a.n))
        assert res.converged
        np.testing.assert_array_equal(res.x, 0)

    def test_warm_start(self, rng):
        a = laplacian_2d(4)
        b = rng.standard_normal(a.n)
        x0 = np.linalg.solve(a.to_dense(), b)
        res = gmres(a, b, x0=x0, tol=1e-10, maxiter=5)
        assert res.history[0] <= 1e-10


class TestConjugateGradient:
    def test_spd_converges(self, rng):
        a = laplacian_2d(5)
        b = rng.standard_normal(a.n)
        res = conjugate_gradient(a, b, tol=1e-10, maxiter=300)
        assert res.converged

    def test_exact_preconditioner_fast(self, rng):
        a = laplacian_3d(4)
        b = rng.standard_normal(a.n)
        res = conjugate_gradient(a, b, precond=exact_precond(a),
                                 tol=1e-12, maxiter=20)
        assert res.converged
        assert res.iterations <= 3

    def test_zero_rhs(self):
        a = laplacian_2d(3)
        res = conjugate_gradient(a, np.zeros(a.n))
        assert res.converged


class TestIterativeRefinement:
    def test_converges_with_good_preconditioner(self, rng):
        a = laplacian_2d(5)
        b = rng.standard_normal(a.n)
        res = iterative_refinement(a, b, exact_precond(a), tol=1e-12)
        assert res.converged
        assert res.iterations <= 3

    def test_approximate_preconditioner_improves(self, rng):
        """A τ=1e-4 BLR preconditioner must drive the error down over
        iterations (the mechanism behind Figure 8)."""
        a = laplacian_3d(8)
        s = Solver(a, tiny_blr_config(strategy="minimal-memory",
                                      tolerance=1e-4))
        s.factorize()
        b = rng = np.random.default_rng(0).standard_normal(a.n)
        res = iterative_refinement(a, b, s._precond, tol=1e-12, maxiter=20)
        assert res.history[-1] < res.history[0]

    def test_zero_rhs(self):
        a = laplacian_2d(3)
        res = iterative_refinement(a, np.zeros(a.n), lambda r: r)
        assert res.converged


class TestSolverRefineIntegration:
    def test_blr_preconditioned_gmres_reaches_machine_precision(self, rng):
        """Figure 8 at τ=1e-8: a handful of iterations reach ~1e-12."""
        a = convection_diffusion_3d(6)
        s = Solver(a, tiny_blr_config(strategy="minimal-memory",
                                      tolerance=1e-8))
        s.factorize()
        b = rng.standard_normal(a.n)
        res = s.refine(b, tol=1e-12, maxiter=20)
        assert res.backward_error <= 1e-11
        assert res.iterations <= 10

    def test_default_method_selection(self, rng):
        a = laplacian_3d(4)
        s_lu = Solver(a, tiny_blr_config(factotype="lu"))
        s_lu.factorize()
        b = rng.standard_normal(a.n)
        res = s_lu.refine(b)  # GMRES for LU
        assert res.converged
        s_ch = Solver(a, tiny_blr_config(factotype="cholesky"))
        s_ch.factorize()
        res = s_ch.refine(b)  # CG for Cholesky
        assert res.converged

    def test_unknown_method_rejected(self, rng):
        a = laplacian_2d(3)
        s = Solver(a, tiny_blr_config())
        s.factorize()
        with pytest.raises(ValueError, match="method"):
            s.refine(np.ones(a.n), method="bicgstab")

    def test_solve_with_refine_flag(self, rng):
        a = laplacian_3d(6)
        s = Solver(a, tiny_blr_config(strategy="just-in-time",
                                      tolerance=1e-4))
        s.factorize()
        b = rng.standard_normal(a.n)
        x_plain = s.solve(b)
        x_ref = s.solve(b, refine=True)
        assert s.backward_error(x_ref, b) <= s.backward_error(x_plain, b)


class TestPanelRefinement:
    """Multi-RHS refinement: ``(n, k)`` panels are refined per column to
    the same backward error as the corresponding single-RHS runs."""

    def test_panel_matches_single_rhs_backward_error(self, rng):
        a = laplacian_3d(6)
        s = Solver(a, tiny_blr_config(strategy="minimal-memory",
                                      tolerance=1e-4))
        s.factorize()
        b = rng.standard_normal((a.n, 4))
        res = iterative_refinement(a, b, s._precond, tol=1e-12, maxiter=20)
        assert res.x.shape == (a.n, 4)
        assert res.converged
        assert res.col_history is not None and len(res.col_history) == 4
        for j in range(4):
            col = iterative_refinement(a, np.ascontiguousarray(b[:, j]),
                                       s._precond, tol=1e-12, maxiter=20)
            err_panel = (np.linalg.norm(a.matvec(res.x[:, j]) - b[:, j])
                         / np.linalg.norm(b[:, j]))
            err_single = (np.linalg.norm(a.matvec(col.x) - b[:, j])
                          / np.linalg.norm(b[:, j]))
            assert err_panel <= max(1e-11, 10 * err_single)

    def test_panel_column_histories_match_single_rhs(self, rng):
        """Per-column histories equal the single-RHS histories exactly:
        the active-column bookkeeping must not change the arithmetic."""
        a = laplacian_3d(5)
        s = Solver(a, tiny_blr_config(strategy="minimal-memory",
                                      tolerance=1e-4))
        s.factorize()
        b = rng.standard_normal((a.n, 3))
        res = iterative_refinement(a, b, s._precond, tol=1e-12, maxiter=20)
        for j in range(3):
            col = iterative_refinement(a, np.ascontiguousarray(b[:, j]),
                                       s._precond, tol=1e-12, maxiter=20)
            assert res.col_history[j] == pytest.approx(list(col.history))

    def test_merged_history_is_per_column_max(self, rng):
        a = laplacian_3d(5)
        s = Solver(a, tiny_blr_config(strategy="minimal-memory",
                                      tolerance=1e-4))
        s.factorize()
        b = rng.standard_normal((a.n, 3))
        res = iterative_refinement(a, b, s._precond, tol=1e-12, maxiter=20)
        for i, h in enumerate(res.history):
            per_col = max(c[min(i, len(c) - 1)] for c in res.col_history)
            assert h == pytest.approx(per_col)

    def test_zero_columns_converge_immediately(self, rng):
        a = laplacian_2d(4)
        s = Solver(a, tiny_blr_config())
        s.factorize()
        b = np.zeros((a.n, 2))
        b[:, 1] = rng.standard_normal(a.n)
        res = iterative_refinement(a, b, s._precond, tol=1e-12, maxiter=20)
        assert res.converged
        np.testing.assert_array_equal(res.x[:, 0], 0)
        assert res.col_history[0] == []

    def test_gmres_panel_runs_per_column(self, rng):
        a = laplacian_2d(4)
        b = rng.standard_normal((a.n, 3))
        res = gmres(a, b, tol=1e-10, maxiter=200, restart=50)
        assert res.x.shape == (a.n, 3)
        assert res.converged
        for j in range(3):
            rj = np.linalg.norm(a.matvec(res.x[:, j]) - b[:, j])
            assert rj / np.linalg.norm(b[:, j]) <= 1e-9

    def test_cg_panel_runs_per_column(self, rng):
        a = laplacian_2d(4)
        b = rng.standard_normal((a.n, 2))
        res = conjugate_gradient(a, b, tol=1e-10, maxiter=300)
        assert res.x.shape == (a.n, 2)
        assert res.converged

    def test_solver_refine_accepts_panel(self, rng):
        a = laplacian_3d(5)
        s = Solver(a, tiny_blr_config(strategy="minimal-memory",
                                      tolerance=1e-6))
        s.factorize()
        b = rng.standard_normal((a.n, 3))
        res = s.refine(b, tol=1e-12, maxiter=20)
        assert res.x.shape == (a.n, 3)
        assert res.backward_error <= 1e-10
