"""Precision-generic solver tests: float32/complex end-to-end, Hermitian
low-rank algebra, dtype-honest byte accounting, and mixed-precision BLR
storage."""

import numpy as np
import pytest

from tests.conftest import tiny_blr_config

from repro.config import SolverConfig
from repro.core.solver import Solver
from repro.lowrank.block import LowRankBlock
from repro.sparse.csc import CSCMatrix
from repro.sparse.generators import helmholtz_3d, laplacian_3d

STRATEGIES = ("dense", "just-in-time", "minimal-memory")

#: per-dtype compression tolerance: single-kind dtypes cannot support τ
#: below their epsilon
TAU = {"float32": 1e-4, "complex64": 1e-4, "float64": 1e-8, "complex128": 1e-8}


def _workload(dtype: str) -> CSCMatrix:
    """A paper-shaped matrix whose factorization runs at ``dtype``."""
    if dtype.startswith("complex"):
        # damped Helmholtz: complex symmetric (LU territory)
        return helmholtz_3d(6, wavenumber=0.6, damping=0.5)
    return laplacian_3d(6)


def _config(dtype: str, strategy: str, **overrides) -> SolverConfig:
    return tiny_blr_config(strategy=strategy, factotype="lu",
                           tolerance=TAU[dtype], dtype=dtype, **overrides)


def _rhs(a: CSCMatrix, dtype: str) -> np.ndarray:
    rng = np.random.default_rng(7)
    b = rng.standard_normal(a.n)
    if dtype.startswith("complex"):
        b = b + 1j * rng.standard_normal(a.n)
    return b


class TestEndToEnd:
    """factorize + solve + refine + serialize for every dtype x strategy."""

    @pytest.mark.parametrize("dtype", sorted(TAU))
    @pytest.mark.parametrize("strategy", STRATEGIES)
    def test_factorize_solve(self, dtype, strategy):
        a = _workload(dtype)
        s = Solver(a, _config(dtype, strategy))
        s.factorize()
        assert s.factor.dtype == np.dtype(dtype)
        b = _rhs(a, dtype)
        x = s.solve(b)
        tau = TAU[dtype]
        assert s.backward_error(x, b) <= max(10 * tau, 1e-12)

    @pytest.mark.parametrize("dtype", sorted(TAU))
    def test_refine(self, dtype):
        a = _workload(dtype)
        s = Solver(a, _config(dtype, "minimal-memory"))
        b = _rhs(a, dtype)
        res = s.refine(b, tol=1e-12, maxiter=30)
        # single-kind arithmetic stalls near its epsilon; double converges
        limit = 1e-6 if dtype in ("float32", "complex64") else 1e-11
        assert res.backward_error <= limit

    @pytest.mark.parametrize("dtype", sorted(TAU))
    def test_serialize_roundtrip(self, dtype, tmp_path):
        a = _workload(dtype)
        s = Solver(a, _config(dtype, "just-in-time"))
        s.factorize()
        b = _rhs(a, dtype)
        x = s.solve(b)
        path = s.save_factor(tmp_path / "fac.blrz")
        s2 = Solver.load_factor(a, path)
        assert s2.factor.dtype == np.dtype(dtype)
        np.testing.assert_allclose(s2.solve(b), x, rtol=0, atol=0)

    def test_dtype_none_inherits_matrix_dtype(self):
        a = helmholtz_3d(5, wavenumber=0.6, damping=0.5)
        s = Solver(a, tiny_blr_config(factotype="lu", tolerance=1e-8))
        s.factorize()
        assert s.factor.dtype == np.complex128

    def test_float32_input_inherits(self):
        a64 = laplacian_3d(5)
        a = CSCMatrix(a64.n, a64.colptr, a64.rowind,
                      a64.values.astype(np.float32))
        s = Solver(a, tiny_blr_config(factotype="lu", tolerance=1e-4))
        s.factorize()
        assert s.factor.dtype == np.float32

    def test_complex_matrix_real_dtype_raises(self):
        a = helmholtz_3d(4, wavenumber=0.6, damping=0.5)
        with pytest.raises(ValueError, match="complex"):
            Solver(a, tiny_blr_config(factotype="lu", dtype="float64"))


class TestComplexRhs:
    def test_complex_rhs_against_real_factorization_raises(self):
        a = laplacian_3d(4)
        s = Solver(a, tiny_blr_config())
        s.factorize()
        b = np.ones(a.n) + 1j * np.ones(a.n)
        with pytest.raises(ValueError, match="complex right-hand side"):
            s.solve(b)

    def test_real_rhs_against_complex_factorization_promotes(self):
        a = helmholtz_3d(4, wavenumber=0.6, damping=0.5)
        s = Solver(a, tiny_blr_config(factotype="lu"))
        x = s.solve(np.ones(a.n))
        assert x.dtype == np.complex128


class TestHermitianSymmetry:
    def _hermitian(self, n=24, seed=3):
        rng = np.random.default_rng(seed)
        b = rng.standard_normal((n, n)) + 1j * rng.standard_normal((n, n))
        dense = b @ b.conj().T + n * np.eye(n)
        return CSCMatrix.from_dense(dense)

    def test_is_symmetric_hermitian_flag(self):
        a = self._hermitian()
        assert a.is_symmetric(tol=1e-12, hermitian=True)
        assert not a.is_symmetric(tol=1e-12, hermitian=False)
        sym = helmholtz_3d(4, wavenumber=0.6, damping=0.5)
        assert sym.is_symmetric(tol=0.0, hermitian=False)
        assert not sym.is_symmetric(tol=0.0, hermitian=True)

    @pytest.mark.parametrize("factotype", ("cholesky", "ldlt"))
    def test_hermitian_facto_solves(self, factotype):
        a = self._hermitian()
        s = Solver(a, tiny_blr_config(strategy="dense", factotype=factotype))
        s.factorize()
        b = _rhs(a, "complex128")
        x = s.solve(b)
        assert s.backward_error(x, b) <= 1e-12

    @pytest.mark.parametrize("strategy", ("just-in-time", "minimal-memory"))
    @pytest.mark.parametrize("factotype", ("cholesky", "ldlt"))
    def test_hermitian_facto_blr_paths(self, factotype, strategy):
        # D A D^H with unitary diagonal D: sparse, Hermitian PD, and
        # genuinely complex — exercises the low-rank Hermitian panel
        # solves and conjugated trailing updates
        base = laplacian_3d(6)
        rng = np.random.default_rng(2)
        d = np.exp(1j * rng.uniform(0, 2 * np.pi, base.n))
        r = base.rowind
        c = np.repeat(np.arange(base.n, dtype=np.int64),
                      np.diff(base.colptr))
        v = base.values
        diag, up = r == c, r < c
        vu = d[r[up]] * v[up] * np.conj(d[c[up]])
        a = CSCMatrix.from_coo(
            base.n,
            np.concatenate([r[diag], r[up], c[up]]),
            np.concatenate([c[diag], c[up], r[up]]),
            np.concatenate([v[diag].astype(np.complex128), vu, np.conj(vu)]))
        assert a.is_symmetric(tol=0.0, hermitian=True)
        s = Solver(a, tiny_blr_config(strategy=strategy, factotype=factotype,
                                      tolerance=1e-8))
        s.factorize()
        b = _rhs(a, "complex128")
        x = s.solve(b)
        assert s.backward_error(x, b) <= 1e-7

    def test_complex_symmetric_rejected_by_cholesky(self):
        # damped Helmholtz is complex symmetric but NOT Hermitian
        a = helmholtz_3d(4, wavenumber=0.6, damping=0.5)
        with pytest.raises(ValueError, match="Hermitian"):
            Solver(a, tiny_blr_config(factotype="cholesky"))


class TestLowRankBlockAlgebra:
    def _block(self, m=9, n=7, r=3, seed=11):
        rng = np.random.default_rng(seed)
        u = rng.standard_normal((m, r)) + 1j * rng.standard_normal((m, r))
        v = rng.standard_normal((n, r)) + 1j * rng.standard_normal((n, r))
        return LowRankBlock(u, v)

    def test_matvec_is_u_vt(self):
        blk = self._block()
        x = np.arange(blk.n) + 1j * np.arange(blk.n)[::-1]
        dense = blk.u @ blk.v.T  # pure transpose, NOT conjugated
        np.testing.assert_allclose(blk.matvec(x), dense @ x, atol=1e-12)
        np.testing.assert_allclose(blk.to_dense(), dense, atol=0)

    def test_rmatvec_is_adjoint(self):
        blk = self._block()
        x = np.arange(blk.m) - 1j * np.arange(blk.m)
        dense = blk.to_dense()
        np.testing.assert_allclose(blk.rmatvec(x), dense.conj().T @ x,
                                   atol=1e-12)

    def test_tmatvec_is_pure_transpose(self):
        blk = self._block()
        x = np.arange(blk.m) + 0.5j
        np.testing.assert_allclose(blk.tmatvec(x), blk.to_dense().T @ x,
                                   atol=1e-12)

    def test_adjoint_inner_product_identity(self):
        # <A x, y> == <x, A^H y> is what distinguishes rmatvec from tmatvec
        blk = self._block()
        rng = np.random.default_rng(5)
        x = rng.standard_normal(blk.n) + 1j * rng.standard_normal(blk.n)
        y = rng.standard_normal(blk.m) + 1j * rng.standard_normal(blk.m)
        lhs = np.vdot(y, blk.matvec(x))
        rhs = np.vdot(blk.rmatvec(y), x)
        assert abs(lhs - rhs) < 1e-10

    def test_conj_and_astype(self):
        blk = self._block()
        np.testing.assert_allclose(blk.conj().to_dense(),
                                   blk.to_dense().conj(), atol=0)
        narrow = blk.astype(np.complex64)
        assert narrow.dtype == np.complex64
        assert narrow.nbytes == blk.nbytes // 2
        assert blk.astype(np.complex128) is blk  # no-copy fast path


class TestByteAccounting:
    def test_dense_factor_nbytes_tracks_itemsize(self):
        a = laplacian_3d(5)
        stats = {}
        for dtype in ("float32", "float64"):
            s = Solver(a, tiny_blr_config(strategy="dense", dtype=dtype,
                                          tolerance=TAU[dtype]))
            stats[dtype] = s.factorize()
        assert stats["float64"].dense_factor_nbytes == \
            2 * stats["float32"].dense_factor_nbytes
        assert stats["float64"].factor_nbytes == \
            2 * stats["float32"].factor_nbytes

    def test_lowrank_block_nbytes_honest(self):
        blk = LowRankBlock(np.zeros((10, 2), dtype=np.float32),
                           np.zeros((8, 2), dtype=np.float32))
        assert blk.nbytes == (10 + 8) * 2 * 4


class TestMixedPrecision:
    def test_storage_dtype_validation(self):
        with pytest.raises(ValueError, match="same-kind"):
            SolverConfig(dtype="complex128", storage_dtype="float32")
        with pytest.raises(ValueError, match="wider"):
            SolverConfig(dtype="float32", storage_dtype="float64")
        with pytest.raises(ValueError, match="storage_dtype"):
            SolverConfig(storage_dtype="int32")

    def test_blocks_stored_narrow(self):
        a = laplacian_3d(8)
        cfg = tiny_blr_config(strategy="just-in-time", factotype="lu",
                              tolerance=1e-6, storage_dtype="float32")
        s = Solver(a, cfg)
        s.factorize()
        assert s.factor.storage_dtype == np.float32
        saw_offdiag = False
        for nc in s.factor.cblks:
            assert nc.diag.dtype == np.float64  # pivots stay full precision
            for blocks in (nc.lblocks, nc.ublocks):
                if not blocks:
                    continue
                for blk in blocks:
                    dt = blk.dtype if isinstance(blk, LowRankBlock) \
                        else blk.dtype
                    assert dt == np.float32
                    saw_offdiag = True
        assert saw_offdiag

    def test_mixed_precision_serialize_roundtrip(self, tmp_path):
        a = laplacian_3d(6)
        cfg = tiny_blr_config(strategy="just-in-time", factotype="lu",
                              tolerance=1e-6, storage_dtype="float32")
        s = Solver(a, cfg)
        s.factorize()
        b = np.ones(a.n)
        x = s.solve(b)
        path = s.save_factor(tmp_path / "mixed.blrz")
        s2 = Solver.load_factor(a, path)
        assert s2.factor.storage_dtype == np.float32
        np.testing.assert_allclose(s2.solve(b), x, rtol=0, atol=0)

    @pytest.mark.slow
    def test_acceptance_reduction_on_laptop_laplacian(self):
        """The headline: float32 storage under a float64 factorization at
        τ=1e-6 shrinks the factor ≥ 1.8x at backward error ≤ 1e-5."""
        a = laplacian_3d(20)
        b = np.ones(a.n)

        def cfg(**o):
            return SolverConfig.laptop_scale(
                strategy="just-in-time", factotype="lu",
                tolerance=1e-6, rank_ratio=1.0, **o)

        full = Solver(a, cfg())
        st_full = full.factorize()
        mixed = Solver(a, cfg(storage_dtype="float32"))
        st_mixed = mixed.factorize()
        x = mixed.solve(b)
        reduction = st_full.factor_nbytes / st_mixed.factor_nbytes
        assert reduction >= 1.8
        assert mixed.backward_error(x, b) <= 1e-5


class TestComplexAcceptance:
    """complex128 Helmholtz under all three strategies (ISSUE acceptance)."""

    @pytest.mark.parametrize("strategy", STRATEGIES)
    def test_helmholtz_complex128(self, strategy):
        a = helmholtz_3d(8, wavenumber=0.6, damping=0.5)
        assert a.values.dtype == np.complex128
        tau = 1e-8
        cfg = SolverConfig.laptop_scale(strategy=strategy, factotype="lu",
                                        tolerance=tau)
        s = Solver(a, cfg)
        s.factorize()
        assert s.factor.dtype == np.complex128
        b = _rhs(a, "complex128")
        x = s.solve(b)
        assert s.backward_error(x, b) <= max(10 * tau, 1e-12)
