"""Tests for RunReport artifacts, rank-by-level metrics, the ``repro
report`` CLI, the tier-0 bench history format, and tools/benchdiff.

The two ``test_run_report_*`` cases are the PR's acceptance criteria: a
telemetry-enabled JIT run and a Minimal Memory run must each produce a
RunReport containing kernel counters, a memory high-water timeline,
rank-evolution samples and a refinement residual history.
"""

import json
from pathlib import Path

import numpy as np
import pytest

from repro.analysis.metrics import cblk_levels, rank_histogram_by_level
from repro.analysis.report import (
    REPORT_SCHEMA,
    build_run_report,
    load_run_report,
    render_figures,
    render_markdown,
    save_run_report,
)
from repro.cli import main
from repro.core.solver import Solver
from repro.runtime.telemetry import Telemetry
from repro.sparse.generators import laplacian_2d, laplacian_3d
from tests.conftest import tiny_blr_config
from tools.benchdiff import Thresholds, compare, extract_metrics
from tools.benchdiff.__main__ import run as benchdiff_run

REPO_ROOT = Path(__file__).resolve().parent.parent


def _reported_solver(strategy: str, **overrides) -> Solver:
    tele = Telemetry()
    a = laplacian_2d(24)
    s = Solver(a, tiny_blr_config(strategy=strategy, telemetry=tele,
                                  **overrides))
    s.factorize()
    b = np.ones(a.n)
    x = s.solve(b)
    s.refine(b, x0=x)
    return s


def _check_full_report(report: dict) -> None:
    assert report["schema"] == REPORT_SCHEMA
    # kernel counters (both the Table-2 tallies and the telemetry bus)
    assert report["kernels"]["compress"]["calls"] > 0
    counters = report["telemetry"]["counters"]
    assert "compress_blocks" in counters
    # memory high-water timeline
    mem = report["telemetry"]["series"]["memory_highwater"]
    assert len(mem) > 1
    assert mem[-1]["peak"] >= mem[0]["peak"]
    # rank-evolution samples
    ranks = report["telemetry"]["series"]["rank_evolution"]
    assert len(ranks) > 0
    assert all("rank_after" in p for p in ranks)
    # refinement residual history
    hist = report["refinement"]["residual_history"]
    assert len(hist) >= 1
    assert all(isinstance(h, float) for h in hist)
    # the whole artifact is valid JSON
    json.dumps(report)


class TestRunReport:
    def test_run_report_just_in_time(self):
        s = _reported_solver("just-in-time")
        report = s.run_report(workload="lap2d:24", backward_error=1e-12)
        _check_full_report(report)
        assert report["workload"] == "lap2d:24"
        assert report["backward_error"] == 1e-12
        assert report["config"]["strategy"] == "just-in-time"
        assert report["config"]["telemetry"] is None

    def test_run_report_minimal_memory(self):
        s = _reported_solver("minimal-memory")
        report = s.run_report()
        _check_full_report(report)
        sites = {p["site"]
                 for p in report["telemetry"]["series"]["rank_evolution"]}
        assert "recompress" in sites

    def test_report_without_telemetry_still_builds(self):
        a = laplacian_2d(16)
        s = Solver(a, tiny_blr_config())
        s.factorize()
        s.refine(np.ones(a.n))
        report = build_run_report(s, workload="plain")
        assert report["telemetry"] is None
        assert report["refinement"]["residual_history"]
        assert report["kernels"]

    def test_unfactorized_solver_rejected(self):
        s = Solver(laplacian_2d(8), tiny_blr_config())
        with pytest.raises(ValueError):
            build_run_report(s)

    def test_save_load_round_trip(self, tmp_path):
        s = _reported_solver("just-in-time")
        report = s.run_report(workload="rt")
        path = save_run_report(report, tmp_path / "run.json")
        assert load_run_report(path) == json.loads(json.dumps(report))

    def test_load_rejects_non_reports(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text('{"results": []}')
        with pytest.raises(ValueError):
            load_run_report(bad)

    def test_render_markdown_sections(self):
        s = _reported_solver("minimal-memory")
        md = render_markdown(s.run_report(workload="md-test"))
        for heading in ("# Run report — md-test", "## Problem and timings",
                        "## Kernel breakdown", "## Compression",
                        "## Refinement", "## Telemetry"):
            assert heading in md

    def test_render_figures(self, tmp_path):
        s = _reported_solver("minimal-memory")
        figs = render_figures(s.run_report(), tmp_path)
        names = {f.name for f in figs}
        assert "memory_highwater.svg" in names
        assert "refinement_residual.svg" in names
        for f in figs:
            assert f.read_text().startswith("<svg")


class TestRankHistogramByLevel:
    def test_levels_follow_block_etree(self):
        s = Solver(laplacian_3d(8), tiny_blr_config())
        s.factorize()
        levels = cblk_levels(s.factor)
        parent = s.factor.symb.block_etree()
        assert len(levels) == s.symbolic.ncblk
        for k, p in enumerate(parent):
            if p < 0:
                assert levels[k] == 0
            else:
                assert levels[k] == levels[p] + 1

    def test_per_level_sums_match_global(self):
        from repro.analysis.metrics import rank_histogram

        s = Solver(laplacian_2d(24), tiny_blr_config())
        s.factorize()
        global_hist = rank_histogram(s.factor)
        by_level = rank_histogram_by_level(s.factor)
        assert sum(global_hist.values()) > 0  # compression happened
        merged = {}
        for per in by_level.values():
            for r, c in per.items():
                merged[r] = merged.get(r, 0) + c
        assert merged == global_hist


class TestReportCLI:
    def test_solve_report_then_render(self, tmp_path, capsys):
        run = tmp_path / "run.json"
        rc = main(["solve", "--generate", "lap3d:6", "--tolerance", "1e-4",
                   "--refine", "--report", str(run)])
        assert rc == 0
        report = load_run_report(run)
        assert report["workload"] == "lap3d:6"
        assert report["telemetry"] is not None
        capsys.readouterr()

        out_md = tmp_path / "run.md"
        rc = main(["report", str(run), "-o", str(out_md),
                   "--figures", str(tmp_path / "figs")])
        assert rc == 0
        assert out_md.read_text().startswith("# Run report")

    def test_report_to_stdout(self, tmp_path, capsys):
        run = tmp_path / "run.json"
        main(["solve", "--generate", "lap3d:5", "--report", str(run)])
        capsys.readouterr()
        rc = main(["report", str(run)])
        assert rc == 0
        assert "## Problem and timings" in capsys.readouterr().out


# ----------------------------------------------------------------------
# bench history + benchdiff
# ----------------------------------------------------------------------

def _bench_payload(**overrides):
    rec = {
        "label": "float64",
        "facto_time_s": 1.0,
        "solve_time_s": 0.1,
        "factor_nbytes": 1000,
        "peak_nbytes": 2000,
        "backward_error": 1e-7,
    }
    rec.update(overrides)
    return {"bench": "tier0", "history": [
        {"timestamp": "2026-01-01T00:00:00+00:00", "python": "3.11",
         "results": [rec]}]}


class TestBenchHistory:
    def test_migrate_legacy_layout(self):
        from benchmarks.bench_tier0 import migrate

        legacy = {"bench": "tier0", "python": "3.11.7",
                  "results": [{"label": "float64", "facto_time_s": 1.0}]}
        migrated = migrate(legacy)
        assert "results" not in migrated
        assert len(migrated["history"]) == 1
        assert migrated["history"][0]["timestamp"] is None
        assert migrated["history"][0]["python"] == "3.11.7"
        # already-migrated payloads pass through untouched
        assert migrate(migrated) is migrated

    def test_committed_baseline_is_history_format(self):
        from pathlib import Path

        root = Path(__file__).resolve().parent.parent
        payload = json.loads((root / "BENCH_tier0.json").read_text())
        assert isinstance(payload["history"], list)
        assert payload["history"]
        assert "results" not in payload
        labels = [r["label"] for r in payload["history"][-1]["results"]]
        assert "float64" in labels

    def test_extract_metrics_takes_last_history_entry(self):
        payload = _bench_payload()
        payload["history"].append(
            {"timestamp": "2026-01-02T00:00:00+00:00", "python": "3.11",
             "results": [{"label": "float64", "facto_time_s": 2.0}]})
        metrics = extract_metrics(payload)
        assert metrics["float64"]["facto_time_s"] == 2.0


class TestBenchdiff:
    def test_identical_inputs_pass(self):
        payload = _bench_payload()
        findings, notes = compare(payload, payload)
        assert findings == []
        assert notes == []

    def test_time_regression_warns_only(self):
        base = _bench_payload()
        cur = _bench_payload(facto_time_s=2.0)
        findings, _ = compare(base, cur)
        assert [f.severity for f in findings] == ["warn"]
        assert findings[0].metric == "facto_time_s"

    def test_bytes_and_error_regressions_fail(self):
        base = _bench_payload()
        cur = _bench_payload(factor_nbytes=1200, backward_error=1e-5)
        findings, _ = compare(base, cur)
        assert {f.metric for f in findings
                if f.severity == "fail"} == {"factor_nbytes",
                                             "backward_error"}

    def test_thresholds_respected(self):
        base = _bench_payload()
        cur = _bench_payload(factor_nbytes=1050)
        assert compare(base, cur)[0] == []  # +5% under the 10% gate
        findings, _ = compare(base, cur,
                              Thresholds(bytes_fail=0.01))
        assert findings and findings[0].severity == "fail"

    def test_new_and_missing_labels_are_notes(self):
        base = _bench_payload()
        cur = _bench_payload()
        cur["history"][-1]["results"][0]["label"] = "float32"
        findings, notes = compare(base, cur)
        assert findings == []
        assert len(notes) == 2  # one missing, one new

    def test_speedup_floor_fails_absolute(self):
        base = _bench_payload(multirhs_speedup=8.0)
        cur = _bench_payload(multirhs_speedup=2.0)
        findings, _ = compare(base, cur)
        assert any(f.metric == "multirhs_speedup" and f.severity == "fail"
                   for f in findings)
        # above the floor passes even when slower than the baseline
        cur = _bench_payload(multirhs_speedup=4.0)
        findings, _ = compare(base, cur)
        assert not any(f.metric == "multirhs_speedup" for f in findings)

    def test_speedup_floor_applies_without_baseline(self):
        """A brand-new speedup entry below the floor already fails —
        the absolute gate must not wait a PR for a baseline."""
        base = _bench_payload()
        cur = _bench_payload(multirhs_speedup=1.5)
        findings, notes = compare(base, cur)
        fails = [f for f in findings if f.metric == "multirhs_speedup"]
        assert fails and fails[0].severity == "fail"
        assert fails[0].baseline == Thresholds().speedup_floor
        # a new *label* carrying a bad speedup fails too
        cur2 = _bench_payload(multirhs_speedup=1.5)
        cur2["history"][-1]["results"][0]["label"] = "multirhs"
        findings2, _ = compare(base, cur2)
        assert any(f.metric == "multirhs_speedup" and f.severity == "fail"
                   for f in findings2)

    def test_speedup_floor_cli_flag(self, tmp_path, capsys):
        ok = tmp_path / "ok.json"
        ok.write_text(json.dumps(_bench_payload(multirhs_speedup=5.0)))
        assert benchdiff_run([str(ok), str(ok)]) == 0
        assert benchdiff_run([str(ok), str(ok),
                              "--speedup-floor", "6.0"]) == 1
        capsys.readouterr()

    def test_run_report_inputs(self, tmp_path):
        s = _reported_solver("just-in-time")
        base = s.run_report(workload="w", backward_error=1e-9)
        cur = json.loads(json.dumps(base))
        cur["stats"]["peak_nbytes"] *= 2
        findings, _ = compare(base, cur)
        assert any(f.metric == "peak_nbytes" and f.severity == "fail"
                   for f in findings)

    def test_cli_exit_codes(self, tmp_path, capsys):
        ok = tmp_path / "ok.json"
        ok.write_text(json.dumps(_bench_payload()))
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps(_bench_payload(factor_nbytes=5000)))
        warn = tmp_path / "warn.json"
        warn.write_text(json.dumps(_bench_payload(facto_time_s=3.0)))

        assert benchdiff_run([str(ok), str(ok)]) == 0
        assert benchdiff_run([str(ok), str(bad)]) == 1
        assert benchdiff_run([str(ok), str(warn)]) == 0
        assert benchdiff_run([str(ok), str(warn), "--fail-on-warn"]) == 1
        assert benchdiff_run([str(ok), str(tmp_path / "missing.json")]) == 2
        notjson = tmp_path / "notjson.json"
        notjson.write_text("not json")
        assert benchdiff_run([str(ok), str(notjson)]) == 2
        capsys.readouterr()


# ----------------------------------------------------------------------
# profile section and attribution
# ----------------------------------------------------------------------

class TestProfileSection:
    def _profiled_solver(self) -> Solver:
        from repro.runtime.spans import SpanProfiler

        tele = Telemetry()
        a = laplacian_2d(24)
        s = Solver(a, tiny_blr_config(strategy="just-in-time",
                                      telemetry=tele,
                                      profiler=SpanProfiler(telemetry=tele)))
        s.factorize()
        b = np.ones(a.n)
        x = s.solve(b)
        s.refine(b, x0=x)
        return s

    def test_report_carries_phase_rollup(self):
        report = self._profiled_solver().run_report(workload="prof")
        profile = report["profile"]
        assert profile is not None
        assert {"analyze", "factorize", "solve",
                "refinement"} <= set(profile["phases"])
        assert profile["total_time"] > 0
        assert profile["kernels"]["task"]["count"] > 0
        json.dumps(report)

    def test_report_without_profiler_has_null_profile(self):
        report = _reported_solver("just-in-time").run_report()
        assert report["profile"] is None

    def test_markdown_profile_section(self):
        report = self._profiled_solver().run_report(workload="prof")
        md = render_markdown(report)
        assert "## Profile" in md
        assert "| factorize |" in md

    def test_committed_tier0_reports_diff(self, capsys):
        """`repro diff-report` over the two committed tier-0 RunReports
        prints the ranked per-phase attribution table."""
        base = REPO_ROOT / "benchmarks" / "reports" / \
            "RUN_tier0_baseline.json"
        cur = REPO_ROOT / "benchmarks" / "reports" / \
            "RUN_tier0_current.json"
        assert base.exists() and cur.exists(), "committed artifacts missing"
        rc = main(["diff-report", str(base), str(cur)])
        out = capsys.readouterr().out
        assert rc == 0
        assert "Regression attribution" in out
        assert "| factorize |" in out
        assert "Factor bytes:" in out

    def test_benchdiff_names_guilty_phase(self, tmp_path):
        """A benchdiff gate failure on two profiled RunReports appends
        the guilty-phase attribution note."""
        from tools.benchdiff import attribution_notes, load_artifact

        base = load_artifact(REPO_ROOT / "benchmarks" / "reports" /
                             "RUN_tier0_baseline.json")
        cur = load_artifact(REPO_ROOT / "benchmarks" / "reports" /
                            "RUN_tier0_current.json")
        notes = attribution_notes(base, cur)
        assert len(notes) == 1
        assert notes[0].startswith("slowest-moving phase:")
        # compare() itself appends the note once a finding fires
        findings, notes2 = compare(base, cur,
                                   Thresholds(time_warn=-0.99))
        assert findings
        assert any(n.startswith("slowest-moving phase:") for n in notes2)

    def test_attribution_skipped_for_bench_files(self):
        from tools.benchdiff import attribution_notes

        payload = _bench_payload()
        assert attribution_notes(payload, payload) == []
