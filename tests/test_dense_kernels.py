"""Tests for the dense block kernels (LU/Cholesky + right solves)."""

import numpy as np
import pytest

from repro.core.dense_kernels import (
    cholesky_nopivot,
    gemm_flops,
    getrf_flops,
    lu_nopivot,
    potrf_flops,
    solve_lower_right,
    solve_unit_lower_right,
    solve_upper_right,
    trsm_flops,
)


def dominant(rng, n):
    a = rng.standard_normal((n, n))
    a += n * np.eye(n)
    return a


class TestLuNoPivot:
    @pytest.mark.parametrize("n", [1, 5, 63, 64, 65, 130])
    def test_reconstruction(self, rng, n):
        a = dominant(rng, n)
        lu, nperturbed = lu_nopivot(a)
        assert nperturbed == 0
        l_mat = np.tril(lu, -1) + np.eye(n)
        u = np.triu(lu)
        np.testing.assert_allclose(l_mat @ u, a, rtol=0, atol=1e-10 * n)

    def test_static_pivot_perturbation(self):
        a = np.array([[1.0, 1.0], [1.0, 1.0]])  # exactly singular
        lu, nperturbed = lu_nopivot(a, pivot_threshold=1e-8)
        assert nperturbed >= 1
        assert np.isfinite(lu).all()

    def test_rejects_rectangular(self, rng):
        with pytest.raises(ValueError, match="square"):
            lu_nopivot(rng.standard_normal((3, 4)))

    def test_input_not_modified(self, rng):
        a = dominant(rng, 10)
        a0 = a.copy()
        lu_nopivot(a)
        np.testing.assert_array_equal(a, a0)


class TestCholeskyNoPivot:
    @pytest.mark.parametrize("n", [1, 7, 40])
    def test_reconstruction(self, rng, n):
        b = rng.standard_normal((n, n))
        a = b @ b.T + n * np.eye(n)
        l_mat, nperturbed = cholesky_nopivot(a)
        assert nperturbed == 0
        np.testing.assert_allclose(l_mat @ l_mat.T, a, atol=1e-9 * n)

    def test_regularizes_semidefinite(self):
        a = np.array([[1.0, 1.0], [1.0, 1.0]])  # PSD, rank 1
        l_mat, nperturbed = cholesky_nopivot(a, pivot_threshold=1e-10)
        assert np.isfinite(l_mat).all()
        assert nperturbed >= 1

    def test_lower_triangular_output(self, rng):
        a = dominant(rng, 6)
        a = (a + a.T) / 2 + 6 * np.eye(6)
        l_mat, _ = cholesky_nopivot(a)
        assert np.allclose(np.triu(l_mat, 1), 0)


class TestRightSolves:
    def test_solve_upper_right(self, rng):
        u = np.triu(dominant(rng, 6))
        b = rng.standard_normal((4, 6))
        x = solve_upper_right(u, b)
        np.testing.assert_allclose(x @ u, b, atol=1e-10)

    def test_solve_unit_lower_right(self, rng):
        l_mat = np.tril(rng.standard_normal((6, 6)), -1) + np.eye(6)
        b = rng.standard_normal((4, 6))
        x = solve_unit_lower_right(l_mat, b)
        np.testing.assert_allclose(x @ l_mat.T, b, atol=1e-10)

    def test_solve_lower_right(self, rng):
        l_mat = np.tril(dominant(rng, 6))
        b = rng.standard_normal((4, 6))
        x = solve_lower_right(l_mat, b)
        np.testing.assert_allclose(x @ l_mat.T, b, atol=1e-10)

    def test_unit_diagonal_ignores_stored_diag(self, rng):
        """The packed LU layout stores U's diagonal where L's unit diagonal
        lives; the unit-lower solve must ignore it."""
        lu = dominant(rng, 5)  # arbitrary diagonal
        b = rng.standard_normal((3, 5))
        x = solve_unit_lower_right(lu, b)
        l_unit = np.tril(lu, -1) + np.eye(5)
        np.testing.assert_allclose(x @ l_unit.T, b, atol=1e-10)


class TestFlopModels:
    def test_values(self):
        assert gemm_flops(2, 3, 4) == 48
        assert getrf_flops(6) == pytest.approx(144.0)
        assert potrf_flops(6) == pytest.approx(72.0)
        assert trsm_flops(4, 5) == 80
