"""Tests for the intra-supernode (TSP) reordering of [21]."""

import numpy as np

from repro.ordering.graph import Graph
from repro.ordering.nested_dissection import nested_dissection
from repro.ordering.reordering import apply_reordering, reorder_supernodes
from repro.sparse.generators import laplacian_2d, laplacian_3d
from repro.sparse.permute import permute_symmetric
from repro.symbolic.supernodes import Supernode, supernode_row_sets


def build_snodes(a, cmin=8):
    nd = nested_dissection(Graph.from_matrix(a), cmin=cmin)
    ap = permute_symmetric(a, nd.perm)
    return supernode_row_sets(ap, [(p.start, p.size) for p in nd.partitions])


class TestRemapValidity:
    def test_remap_is_permutation(self):
        snodes = build_snodes(laplacian_2d(8))
        newpos = reorder_supernodes(snodes)
        n = snodes[-1].end
        assert sorted(newpos.tolist()) == list(range(n))

    def test_remap_stays_within_supernodes(self):
        snodes = build_snodes(laplacian_3d(5))
        newpos = reorder_supernodes(snodes)
        for s in snodes:
            moved = newpos[s.first_col:s.end]
            assert moved.min() >= s.first_col
            assert moved.max() < s.end

    def test_apply_reordering_keeps_rows_sorted(self):
        snodes = build_snodes(laplacian_2d(8))
        newpos = reorder_supernodes(snodes)
        apply_reordering(snodes, newpos)
        for s in snodes:
            assert np.all(np.diff(s.rows) > 0)

    def test_row_sets_remap_consistently(self):
        """The multiset of (owner supernode, count) per contributor must be
        invariant under the remap."""
        snodes = build_snodes(laplacian_2d(8))
        starts = np.array([s.first_col for s in snodes])

        def owner_histogram(snodes):
            out = []
            for s in snodes:
                owners = np.searchsorted(starts, s.rows, side="right") - 1
                out.append(np.bincount(owners, minlength=len(snodes)))
            return np.array(out)

        before = owner_histogram(snodes)
        newpos = reorder_supernodes(snodes)
        apply_reordering(snodes, newpos)
        after = owner_histogram(snodes)
        np.testing.assert_array_equal(before, after)


class TestBlockMerging:
    def test_groups_identical_patterns_contiguously(self):
        """Hand-built case: a 6-wide supernode receiving two contributors
        with interleaved rows must come out grouped."""
        # supernode 2 owns columns 10..16; contributors 0 and 1 hit
        # alternating rows
        s0 = Supernode(0, 5, rows=np.array([10, 12, 14]))
        s1 = Supernode(5, 5, rows=np.array([11, 13, 15]))
        s2 = Supernode(10, 6)
        s0.parent = 2
        s1.parent = 2
        newpos = reorder_supernodes([s0, s1, s2])
        rows0 = np.sort(newpos[s0.rows])
        rows1 = np.sort(newpos[s1.rows])
        # each contributor's rows must now be contiguous
        assert rows0[-1] - rows0[0] == 2
        assert rows1[-1] - rows1[0] == 2

    def test_reduces_offdiag_blocks_on_grid(self):
        """End-to-end: the reordering should not increase (and typically
        reduces) the number of off-diagonal blocks."""
        from repro.symbolic.factorization import (
            SymbolicOptions,
            symbolic_factorization,
        )
        a = laplacian_3d(6)
        off = {}
        for flag in (False, True):
            opts = SymbolicOptions(cmin=15, reorder_supernodes=flag)
            symb, _ = symbolic_factorization(a, opts)
            off[flag] = symb.total_off_blocks()
        assert off[True] <= off[False]


class TestDegenerate:
    def test_no_contributors_identity(self):
        s = [Supernode(0, 4), Supernode(4, 4)]
        newpos = reorder_supernodes(s)
        np.testing.assert_array_equal(newpos, np.arange(8))

    def test_tiny_supernodes_untouched(self):
        s0 = Supernode(0, 2, rows=np.array([4]))
        s1 = Supernode(2, 2, rows=np.array([5]))
        s2 = Supernode(4, 2)
        newpos = reorder_supernodes([s0, s1, s2])
        np.testing.assert_array_equal(newpos, np.arange(6))

    def test_empty_input(self):
        newpos = reorder_supernodes([])
        assert newpos.size == 0
