"""Tests for numerical block storage and assembly."""

import numpy as np
import pytest

from repro.core.factor import assemble
from repro.lowrank.block import LowRankBlock
from repro.sparse.generators import laplacian_2d, laplacian_3d
from repro.sparse.permute import permute_symmetric
from repro.symbolic.factorization import SymbolicOptions, symbolic_factorization
from tests.conftest import tiny_blr_config


def setup(a, config):
    opts = SymbolicOptions.from_config(config)
    symb, perm = symbolic_factorization(a, opts)
    ap = permute_symmetric(a.symmetrize_pattern() if not
                           a.is_pattern_symmetric() else a, perm)
    return symb, ap


def reconstruct(fac, n, side="l"):
    """Rebuild the dense matrix currently held in the block storage."""
    out = np.zeros((n, n))
    for nc in fac.cblks:
        sym = nc.sym
        lo, hi = sym.first_col, sym.end_col
        out[lo:hi, lo:hi] = nc.diag
        for i, b in enumerate(sym.off_blocks()):
            blk = nc.lblock(i) if side == "l" else nc.ublock(i)
            dense = blk.to_dense() if isinstance(blk, LowRankBlock) else blk
            if side == "l":
                out[b.first_row:b.end_row, lo:hi] = dense
            else:
                out[lo:hi, b.first_row:b.end_row] = dense.T
    return out


class TestDenseAssembly:
    @pytest.mark.parametrize("strategy", ["dense", "just-in-time"])
    def test_panel_assembly_reproduces_matrix(self, strategy):
        cfg = tiny_blr_config(strategy=strategy)
        a = laplacian_2d(6)
        symb, ap = setup(a, cfg)
        fac = assemble(ap, symb, cfg)
        d = ap.to_dense()
        np.testing.assert_allclose(reconstruct(fac, a.n, "l"),
                                   np.tril(d) + np.triu(d, 1) * 0
                                   + np.triu(reconstruct(fac, a.n, "l"), 1))
        # lower part == A lower; upper part of the panels mirrors Uᵗ
        np.testing.assert_allclose(np.tril(reconstruct(fac, a.n, "l")),
                                   np.tril(d))
        np.testing.assert_allclose(np.triu(reconstruct(fac, a.n, "u"), 1),
                                   np.triu(d, 1))

    def test_memory_tracker_counts_allocations(self):
        cfg = tiny_blr_config(strategy="dense")
        a = laplacian_2d(5)
        symb, ap = setup(a, cfg)
        fac = assemble(ap, symb, cfg)
        assert fac.tracker.current > 0
        assert fac.tracker.peak == fac.tracker.current
        assert fac.factor_nbytes() == fac.tracker.current


class TestMinimalMemoryAssembly:
    def test_values_reproduced_within_tolerance(self):
        cfg = tiny_blr_config(strategy="minimal-memory", tolerance=1e-10)
        a = laplacian_3d(5)
        symb, ap = setup(a, cfg)
        fac = assemble(ap, symb, cfg)
        d = ap.to_dense()
        low = reconstruct(fac, a.n, "l")
        err = np.linalg.norm(np.tril(low) - np.tril(d))
        assert err <= 1e-8 * np.linalg.norm(d)

    def test_some_blocks_compressed(self):
        cfg = tiny_blr_config(strategy="minimal-memory", tolerance=1e-4)
        a = laplacian_3d(6)
        symb, ap = setup(a, cfg)
        fac = assemble(ap, symb, cfg)
        ncomp = sum(isinstance(b, LowRankBlock)
                    for nc in fac.cblks for b in (nc.lblocks or []))
        assert ncomp > 0

    def test_never_allocates_dense_panels(self):
        cfg = tiny_blr_config(strategy="minimal-memory")
        a = laplacian_3d(5)
        symb, ap = setup(a, cfg)
        fac = assemble(ap, symb, cfg)
        for nc in fac.cblks:
            assert nc.lpanel is None
            assert nc.lblocks is not None

    def test_initial_compression_cheaper_than_dense(self):
        """MM assembly peak must not exceed the dense factor size."""
        cfg = tiny_blr_config(strategy="minimal-memory", tolerance=1e-4)
        a = laplacian_3d(6)
        symb, ap = setup(a, cfg)
        fac = assemble(ap, symb, cfg)
        assert fac.tracker.peak <= fac.dense_factor_nbytes()


class TestBlockAccessors:
    def test_convert_to_blocks_preserves_values(self):
        cfg = tiny_blr_config(strategy="dense")
        a = laplacian_2d(5)
        symb, ap = setup(a, cfg)
        fac = assemble(ap, symb, cfg)
        nc = max(fac.cblks, key=lambda c: c.sym.noff)
        before = [np.array(nc.lblock(i)) for i in range(nc.sym.noff)]
        bytes_before = fac.tracker.current
        fac.convert_to_blocks(nc)
        assert not nc.panel_mode
        for i in range(nc.sym.noff):
            np.testing.assert_array_equal(nc.lblock(i), before[i])
        # same dense payload, same accounting
        assert fac.tracker.current == bytes_before

    def test_set_block_updates_tracking(self):
        cfg = tiny_blr_config(strategy="minimal-memory")
        a = laplacian_2d(6)
        symb, ap = setup(a, cfg)
        fac = assemble(ap, symb, cfg)
        nc = next(c for c in fac.cblks if c.sym.noff)
        old_total = fac.tracker.current
        big = np.zeros((nc.sym.blocks[1].nrows, nc.width))
        fac.set_block(nc, "l", 0, big)
        assert fac.tracker.current != old_total or \
            big.nbytes == old_total - (fac.tracker.current - big.nbytes)

    def test_assemble_rejects_nonsymmetric_pattern(self):
        from repro.sparse.csc import CSCMatrix
        cfg = tiny_blr_config()
        a = laplacian_2d(5)
        symb, ap = setup(a, cfg)
        bad = CSCMatrix.from_coo(a.n, [1], [0], [1.0])
        with pytest.raises(ValueError, match="symmetric"):
            assemble(bad, symb, cfg)

    def test_dense_factor_nbytes_counts_both_sides_for_lu(self):
        cfg = tiny_blr_config(strategy="dense", factotype="lu")
        a = laplacian_2d(5)
        symb, ap = setup(a, cfg)
        fac = assemble(ap, symb, cfg)
        total_off = sum(b.nrows * c.ncols
                        for c in symb.cblks for b in c.off_blocks())
        total_diag = sum(c.ncols ** 2 for c in symb.cblks)
        assert fac.dense_factor_nbytes() == (total_diag + 2 * total_off) * 8
