"""Tests for the low-rank update kernels (lr_product / LR2GE / LR2LR)."""

import numpy as np
import pytest

from repro.lowrank.block import LowRankBlock
from repro.lowrank.kernels import (
    block_nbytes,
    block_to_dense,
    compress_block,
    lr2ge_update,
    lr2lr_update,
    lr_product,
)
from repro.lowrank.rrqr import rrqr_compress
from repro.runtime.stats import KernelStats
from tests.conftest import random_lowrank


def lr(rng, m, n, r):
    return rrqr_compress(random_lowrank(rng, m, n, r, 0.3), 1e-12)


class TestCompressBlock:
    @pytest.mark.parametrize("kernel", ["svd", "rrqr"])
    def test_bound_and_stats(self, rng, kernel):
        a = random_lowrank(rng, 30, 20, 10, 0.4)
        stats = KernelStats()
        out = compress_block(a, 1e-8, kernel, stats=stats)
        err = np.linalg.norm(a - out.to_dense()) / np.linalg.norm(a)
        assert err <= 1.1e-8
        assert stats.flop("compress") > 0
        assert stats.call_count("compress") == 1

    def test_unknown_kernel(self, rng):
        with pytest.raises(ValueError, match="kernel"):
            compress_block(np.zeros((3, 3)), 1e-8, "interpolative")

    def test_cap_returns_none(self, rng):
        a = rng.standard_normal((16, 16))
        assert compress_block(a, 1e-15, "rrqr", max_rank=2) is None


class TestLrProduct:
    """All four operand-type combinations must agree with dense A @ Bᵗ."""

    def test_lr_times_lr(self, rng):
        a, b = lr(rng, 20, 15, 6), lr(rng, 18, 15, 5)
        ref = a.to_dense() @ b.to_dense().T
        out = lr_product(a, b, 1e-10, "rrqr")
        assert isinstance(out, LowRankBlock)
        np.testing.assert_allclose(out.to_dense(), ref, atol=1e-9)
        # paper: rank(ABᵗ) <= min(rA, rB)
        assert out.rank <= min(a.rank, b.rank)

    def test_lr_times_dense(self, rng):
        a = lr(rng, 20, 15, 6)
        b = rng.standard_normal((12, 15))
        ref = a.to_dense() @ b.T
        out = lr_product(a, b, 1e-10, "rrqr")
        assert isinstance(out, LowRankBlock)
        np.testing.assert_allclose(out.to_dense(), ref, atol=1e-9)

    def test_dense_times_lr(self, rng):
        a = rng.standard_normal((20, 15))
        b = lr(rng, 12, 15, 4)
        ref = a @ b.to_dense().T
        out = lr_product(a, b, 1e-10, "rrqr")
        assert isinstance(out, LowRankBlock)
        np.testing.assert_allclose(out.to_dense(), ref, atol=1e-9)

    def test_dense_times_dense(self, rng):
        a = rng.standard_normal((8, 5))
        b = rng.standard_normal((7, 5))
        out = lr_product(a, b, 1e-10, "rrqr")
        assert isinstance(out, np.ndarray)
        np.testing.assert_allclose(out, a @ b.T)

    def test_zero_rank_returns_none(self, rng):
        a = LowRankBlock.zero(10, 8)
        b = lr(rng, 6, 8, 3)
        assert lr_product(a, b, 1e-10, "rrqr") is None
        assert lr_product(b, a, 1e-10, "rrqr") is None

    @pytest.mark.parametrize("kernel", ["svd", "rrqr"])
    def test_t_matrix_recompression_reduces_rank(self, rng, kernel):
        """Build A, B whose product has much lower rank than min(rA, rB)."""
        shared = rng.standard_normal((15, 2))
        a = LowRankBlock(np.linalg.qr(rng.standard_normal((20, 6)))[0],
                         np.hstack([shared, 1e-14 * rng.standard_normal((15, 4))]))
        b = LowRankBlock(np.linalg.qr(rng.standard_normal((18, 6)))[0],
                         np.hstack([shared, 1e-14 * rng.standard_normal((15, 4))]))
        out = lr_product(a, b, 1e-8, kernel)
        assert out.rank <= 2

    def test_stats_charged(self, rng):
        stats = KernelStats()
        a, b = lr(rng, 10, 8, 3), lr(rng, 9, 8, 3)
        lr_product(a, b, 1e-10, "rrqr", stats)
        assert stats.flop("lr_product") > 0


class TestLr2Ge:
    def test_dense_contribution(self, rng):
        target = rng.standard_normal((10, 8))
        contrib = rng.standard_normal((4, 3))
        ref = target.copy()
        ref[2:6, 1:4] -= contrib
        lr2ge_update(target, contrib, 2, 1)
        np.testing.assert_allclose(target, ref)

    def test_lowrank_contribution(self, rng):
        target = rng.standard_normal((10, 8))
        contrib = lr(rng, 4, 3, 2)
        ref = target.copy()
        ref[2:6, 1:4] -= contrib.to_dense()
        lr2ge_update(target, contrib, 2, 1)
        np.testing.assert_allclose(target, ref, atol=1e-12)

    def test_zero_rank_is_noop(self, rng):
        target = rng.standard_normal((5, 5))
        ref = target.copy()
        lr2ge_update(target, LowRankBlock.zero(2, 2), 0, 0)
        np.testing.assert_array_equal(target, ref)

    def test_charges_dense_update(self, rng):
        stats = KernelStats()
        target = np.zeros((6, 6))
        lr2ge_update(target, lr(rng, 3, 3, 1), 0, 0, stats)
        assert stats.flop("dense_update") > 0


class TestLr2Lr:
    @pytest.mark.parametrize("kernel", ["svd", "rrqr"])
    def test_padded_extend_add(self, rng, kernel):
        target = lr(rng, 12, 10, 4)
        contrib = lr(rng, 5, 4, 2)
        ref = target.to_dense()
        ref[3:8, 2:6] -= contrib.to_dense()
        out = lr2lr_update(target, contrib, 3, 2, 1e-10, kernel)
        np.testing.assert_allclose(out.to_dense(), ref, atol=1e-8)

    def test_dense_contribution_gets_compressed_first(self, rng):
        target = lr(rng, 12, 10, 3)
        contrib = random_lowrank(rng, 5, 4, 2, 0.2)
        ref = target.to_dense()
        ref[0:5, 0:4] -= contrib
        out = lr2lr_update(target, contrib, 0, 0, 1e-10, "rrqr")
        np.testing.assert_allclose(out.to_dense(), ref, atol=1e-8)

    def test_cap_exceeded_returns_none(self, rng):
        target = lr(rng, 10, 10, 3)
        contrib = rrqr_compress(rng.standard_normal((10, 10)), 1e-14)
        out = lr2lr_update(target, contrib, 0, 0, 1e-14, "rrqr", max_rank=3)
        assert out is None

    def test_zero_contribution_returns_target(self, rng):
        target = lr(rng, 8, 8, 2)
        out = lr2lr_update(target, LowRankBlock.zero(3, 3), 1, 1,
                           1e-10, "rrqr")
        assert out is target

    def test_charges_lr_addition(self, rng):
        stats = KernelStats()
        target = lr(rng, 8, 8, 2)
        lr2lr_update(target, lr(rng, 4, 4, 1), 0, 0, 1e-10, "rrqr",
                     stats=stats)
        assert stats.flop("lr_addition") > 0


class TestHelpers:
    def test_block_to_dense(self, rng):
        arr = rng.standard_normal((3, 3))
        assert block_to_dense(arr) is arr
        b = lr(rng, 4, 3, 2)
        np.testing.assert_allclose(block_to_dense(b), b.to_dense())

    def test_block_nbytes(self, rng):
        arr = np.zeros((4, 5))
        assert block_nbytes(arr) == 4 * 5 * 8
        b = LowRankBlock(np.zeros((4, 2)), np.zeros((5, 2)))
        assert block_nbytes(b) == (4 + 5) * 2 * 8
