"""Tests for the left-looking scheduler (paper §4.3's JIT-memory proposal)."""

import numpy as np
import pytest

from repro.config import SolverConfig
from repro.core.solver import Solver
from repro.sparse.generators import (
    convection_diffusion_3d,
    laplacian_3d,
)
from tests.conftest import tiny_blr_config


class TestConfigGuards:
    def test_incompatible_with_minimal_memory(self):
        with pytest.raises(ValueError, match="left_looking"):
            SolverConfig(strategy="minimal-memory", left_looking=True)

    def test_incompatible_with_threads(self):
        with pytest.raises(ValueError, match="sequential"):
            SolverConfig(left_looking=True, threads=4)


class TestCorrectness:
    @pytest.mark.parametrize("strategy", ["dense", "just-in-time"])
    def test_matches_right_looking_accuracy(self, strategy, rng):
        a = laplacian_3d(7)
        b = rng.standard_normal(a.n)
        errs = {}
        for ll in (False, True):
            cfg = tiny_blr_config(strategy=strategy, tolerance=1e-8,
                                  left_looking=ll)
            s = Solver(a, cfg)
            s.factorize()
            errs[ll] = s.backward_error(s.solve(b), b)
        assert errs[True] <= max(errs[False] * 10, 1e-9)

    def test_dense_factors_identical(self, rng):
        """Same arithmetic, different traversal: identical factors."""
        a = laplacian_3d(5)
        facs = {}
        for ll in (False, True):
            cfg = tiny_blr_config(strategy="dense", left_looking=ll)
            s = Solver(a, cfg)
            s.factorize()
            facs[ll] = s.factor
        for nc_r, nc_l in zip(facs[False].cblks, facs[True].cblks):
            np.testing.assert_allclose(nc_r.diag, nc_l.diag, atol=1e-10)
            for i in range(nc_r.sym.noff):
                np.testing.assert_allclose(np.asarray(nc_r.lblock(i)),
                                           np.asarray(nc_l.lblock(i)),
                                           atol=1e-10)

    def test_nonsymmetric(self, rng):
        a = convection_diffusion_3d(5)
        cfg = tiny_blr_config(strategy="just-in-time", tolerance=1e-8,
                              left_looking=True)
        s = Solver(a, cfg)
        s.factorize()
        b = rng.standard_normal(a.n)
        assert s.backward_error(s.solve(b), b) <= 1e-5

    def test_cholesky(self, rng):
        a = laplacian_3d(5)
        cfg = tiny_blr_config(strategy="just-in-time",
                              factotype="cholesky", tolerance=1e-8,
                              left_looking=True)
        s = Solver(a, cfg)
        s.factorize()
        b = rng.standard_normal(a.n)
        assert s.backward_error(s.solve(b), b) <= 1e-5


class TestMemoryBehaviour:
    def test_peak_below_right_looking_jit(self):
        """The whole point: the JIT peak drops when panels are allocated
        lazily (§4.3: 'delay the allocation and the compression')."""
        a = laplacian_3d(8)
        peaks = {}
        for ll in (False, True):
            cfg = tiny_blr_config(strategy="just-in-time", tolerance=1e-4,
                                  left_looking=ll)
            stats = Solver(a, cfg).factorize()
            peaks[ll] = stats.peak_nbytes
        assert peaks[True] < peaks[False]

    def test_peak_close_to_compressed_factor_size(self):
        """Left-looking JIT peak ≈ compressed factors + one dense panel."""
        a = laplacian_3d(8)
        cfg = tiny_blr_config(strategy="just-in-time", tolerance=1e-4,
                              left_looking=True)
        stats = Solver(a, cfg).factorize()
        assert stats.peak_nbytes <= stats.factor_nbytes * 1.25

    def test_fill_column_block_requires_deferred_mode(self):
        a = laplacian_3d(4)
        cfg = tiny_blr_config(strategy="dense")
        s = Solver(a, cfg)
        s.factorize()
        with pytest.raises(RuntimeError, match="left-looking"):
            s.factor.fill_column_block(0)
