"""Tests for the LowRankBlock container."""

import numpy as np
import pytest

from repro.lowrank.block import LowRankBlock


class TestConstruction:
    def test_basic(self, rng):
        u = rng.standard_normal((6, 2))
        v = rng.standard_normal((4, 2))
        b = LowRankBlock(u, v)
        assert b.shape == (6, 4)
        assert b.rank == 2
        np.testing.assert_allclose(b.to_dense(), u @ v.T)

    def test_rank_mismatch_rejected(self, rng):
        with pytest.raises(ValueError, match="rank"):
            LowRankBlock(rng.standard_normal((3, 2)),
                         rng.standard_normal((3, 3)))

    def test_non_2d_rejected(self, rng):
        with pytest.raises(ValueError, match="2-D"):
            LowRankBlock(rng.standard_normal(3), rng.standard_normal((3, 1)))

    def test_zero_block(self):
        z = LowRankBlock.zero(5, 3)
        assert z.rank == 0
        np.testing.assert_array_equal(z.to_dense(), np.zeros((5, 3)))


class TestOperations:
    def test_matvec(self, rng):
        b = LowRankBlock(rng.standard_normal((5, 2)),
                         rng.standard_normal((7, 2)))
        x = rng.standard_normal(7)
        np.testing.assert_allclose(b.matvec(x), b.to_dense() @ x)

    def test_matvec_multiple_rhs(self, rng):
        b = LowRankBlock(rng.standard_normal((5, 2)),
                         rng.standard_normal((7, 2)))
        x = rng.standard_normal((7, 3))
        np.testing.assert_allclose(b.matvec(x), b.to_dense() @ x)

    def test_rmatvec(self, rng):
        b = LowRankBlock(rng.standard_normal((5, 2)),
                         rng.standard_normal((7, 2)))
        x = rng.standard_normal(5)
        np.testing.assert_allclose(b.rmatvec(x), b.to_dense().T @ x)

    def test_zero_matvec_shapes(self):
        z = LowRankBlock.zero(4, 6)
        assert z.matvec(np.ones(6)).shape == (4,)
        assert z.matvec(np.ones((6, 2))).shape == (4, 2)
        assert z.rmatvec(np.ones(4)).shape == (6,)

    def test_copy_is_deep(self, rng):
        b = LowRankBlock(rng.standard_normal((3, 1)),
                         rng.standard_normal((3, 1)))
        c = b.copy()
        c.u[0, 0] = 1e9
        assert b.u[0, 0] != 1e9


class TestStorage:
    def test_nbytes(self):
        b = LowRankBlock(np.zeros((10, 3)), np.zeros((20, 3)))
        assert b.nbytes == (10 + 20) * 3 * 8
        assert b.dense_nbytes == 10 * 20 * 8

    def test_is_profitable(self):
        assert LowRankBlock(np.zeros((10, 2)), np.zeros((10, 2))).is_profitable()
        assert not LowRankBlock(np.zeros((10, 6)),
                                np.zeros((10, 6))).is_profitable()
