"""Tests for the analysis package (complexity models + metrics)."""

import pytest

from repro.analysis.complexity import (
    SolverComplexity,
    gemm_cost,
    lr2ge_cost,
    lr2lr_cost_rrqr,
    lr2lr_cost_svd,
    lr_product_cost,
    solver_flop_model,
)
from repro.analysis.metrics import (
    backward_error,
    compression_report,
    rank_histogram,
)
from repro.core.solver import Solver
from repro.sparse.generators import laplacian_3d
from tests.conftest import tiny_blr_config


class TestComplexityModels:
    def test_gemm_scales_with_all_dims(self):
        assert gemm_cost(2 * 10, 20, 30) == 2 * gemm_cost(10, 20, 30)
        assert gemm_cost(10, 20, 2 * 30) == 2 * gemm_cost(10, 20, 30)

    def test_lr2ge_main_factor_is_rank_not_width(self):
        """Table 1: LR2GE's main factor is Θ(mA mB rAB), independent of nA
        asymptotically."""
        base = lr2ge_cost(100, 100, 100, 5, 5, 5)
        wider = lr2ge_cost(100, 100, 1000, 5, 5, 5)
        # nA only enters through the lower-order product term
        assert wider < 2 * base

    def test_lr2lr_depends_on_target_size(self):
        """§3.4: the extend-add cost scales with the *target* dimensions,
        the reason Minimal Memory is slower."""
        small = lr2lr_cost_rrqr(100, 100, 10, 5, 10)
        large = lr2lr_cost_rrqr(1000, 1000, 10, 5, 10)
        assert large > 5 * small
        assert lr2lr_cost_svd(1000, 1000, 10, 5, 10) > \
            5 * lr2lr_cost_svd(100, 100, 10, 5, 10)

    def test_svd_recompression_more_expensive_than_rrqr(self):
        """Table 2's observation: SVD extend-add costs far more."""
        args = (200, 200, 20, 20, 20)
        assert lr2lr_cost_svd(*args) > lr2lr_cost_rrqr(*args)

    def test_lr_product_linear_in_ranks(self):
        assert lr_product_cost(50, 50, 50, 2, 2, 2) < \
            lr_product_cost(50, 50, 50, 8, 8, 8)

    def test_solver_flop_model(self):
        assert solver_flop_model(10 ** 6, "dense") == pytest.approx(1e12)
        assert solver_flop_model(10 ** 6, "blr") < \
            solver_flop_model(10 ** 6, "dense")
        with pytest.raises(ValueError):
            solver_flop_model(100, "hss")

    def test_asymptotic_targets(self):
        c = SolverComplexity(8 ** 6)
        assert c.blr_time_target < c.dense_time
        assert c.blr_memory_target < c.dense_memory


class TestMetrics:
    @pytest.fixture
    def factored(self):
        a = laplacian_3d(8)
        s = Solver(a, tiny_blr_config(strategy="minimal-memory",
                                      tolerance=1e-4))
        s.factorize()
        return a, s

    def test_backward_error_zero_for_exact(self, rng):
        a = laplacian_3d(4)
        x = rng.standard_normal(a.n)
        b = a.matvec(x)
        assert backward_error(a, x, b) <= 1e-14

    def test_rank_histogram_nonempty(self, factored):
        _, s = factored
        hist = rank_histogram(s.factor)
        assert sum(hist.values()) > 0
        assert all(r >= 0 for r in hist)

    def test_compression_report_consistent(self, factored):
        _, s = factored
        rep = compression_report(s.factor)
        assert rep["n_lowrank_blocks"] > 0
        assert rep["total_nbytes"] == (rep["lowrank_nbytes"]
                                       + rep["dense_nbytes"]
                                       + rep["diag_nbytes"])
        assert rep["total_nbytes"] == s.factor.factor_nbytes()
        assert 0 < rep["memory_ratio"] <= 1.0
        assert rep["max_rank"] >= rep["mean_rank"] >= 1

    def test_report_on_dense_strategy(self):
        a = laplacian_3d(5)
        s = Solver(a, tiny_blr_config(strategy="dense"))
        s.factorize()
        rep = compression_report(s.factor)
        assert rep["n_lowrank_blocks"] == 0
        assert rep["memory_ratio"] == pytest.approx(1.0)
