"""End-to-end numerical factorization tests across all strategies."""

import numpy as np
import pytest

from repro.core.solver import Solver
from repro.sparse.generators import (
    convection_diffusion_3d,
    elasticity_3d,
    heterogeneous_poisson_3d,
    laplacian_2d,
    laplacian_3d,
    random_spd,
)
from tests.conftest import tiny_blr_config

STRATEGIES = ["dense", "just-in-time", "minimal-memory"]
KERNELS = ["rrqr", "svd"]


def solve_and_check(a, cfg, rtol, rng_seed=0):
    rng = np.random.default_rng(rng_seed)
    b = rng.standard_normal(a.n)
    s = Solver(a, cfg)
    stats = s.factorize()
    x = s.solve(b)
    err = s.backward_error(x, b)
    assert err <= rtol, f"backward error {err:.2e} above {rtol:.0e}"
    return s, stats


class TestDenseStrategy:
    @pytest.mark.parametrize("ordering", ["nested-dissection", "amd",
                                          "natural"])
    def test_machine_precision(self, ordering):
        a = laplacian_3d(5)
        cfg = tiny_blr_config(strategy="dense", ordering=ordering)
        solve_and_check(a, cfg, 1e-12)

    def test_all_small_matrices(self, small_matrix):
        cfg = tiny_blr_config(strategy="dense")
        solve_and_check(small_matrix, cfg, 1e-10)

    def test_stats_have_no_lr_categories(self):
        a = laplacian_2d(6)
        cfg = tiny_blr_config(strategy="dense")
        _, stats = solve_and_check(a, cfg, 1e-12)
        assert stats.kernels.flop("lr_addition") == 0
        assert stats.kernels.flop("compress") == 0
        assert stats.kernels.flop("dense_update") > 0


@pytest.mark.parametrize("strategy", ["just-in-time", "minimal-memory"])
@pytest.mark.parametrize("kernel", KERNELS)
class TestBlrStrategies:
    @pytest.mark.parametrize("tol", [1e-4, 1e-8])
    def test_backward_error_tracks_tolerance(self, strategy, kernel, tol):
        a = laplacian_3d(6)
        cfg = tiny_blr_config(strategy=strategy, kernel=kernel, tolerance=tol)
        # BLR accumulates compression error over updates: allow 100x headroom
        solve_and_check(a, cfg, tol * 100)

    def test_compression_happens(self, strategy, kernel):
        a = laplacian_3d(8)
        cfg = tiny_blr_config(strategy=strategy, kernel=kernel,
                              tolerance=1e-4)
        _, stats = solve_and_check(a, cfg, 1e-2)
        assert stats.nblocks_compressed > 0
        assert stats.kernels.flop("compress") > 0

    def test_memory_ratio_below_one(self, strategy, kernel):
        a = laplacian_3d(8)
        cfg = tiny_blr_config(strategy=strategy, kernel=kernel,
                              tolerance=1e-4)
        _, stats = solve_and_check(a, cfg, 1e-2)
        assert stats.memory_ratio < 1.0

    def test_nonsymmetric_matrix(self, strategy, kernel):
        a = convection_diffusion_3d(5, peclet=0.6)
        cfg = tiny_blr_config(strategy=strategy, kernel=kernel,
                              tolerance=1e-8)
        solve_and_check(a, cfg, 1e-5)


class TestStrategySpecificBehaviour:
    def test_mm_peak_below_jit_peak(self):
        """Figure 7's claim: the MM strategy never allocates the dense
        structure, so its tracked peak is below JIT's."""
        a = laplacian_3d(8)
        peaks = {}
        for strategy in ("just-in-time", "minimal-memory"):
            cfg = tiny_blr_config(strategy=strategy, tolerance=1e-4)
            _, stats = solve_and_check(a, cfg, 1e-2)
            peaks[strategy] = stats.peak_nbytes
        assert peaks["minimal-memory"] < peaks["just-in-time"]

    def test_jit_peak_equals_dense_peak(self):
        """§4.3: JIT memory peak corresponds to the full dense structure."""
        a = laplacian_3d(5)
        peaks = {}
        for strategy in ("dense", "just-in-time"):
            cfg = tiny_blr_config(strategy=strategy, tolerance=1e-8)
            _, stats = solve_and_check(a, cfg, 1e-4)
            peaks[strategy] = stats.peak_nbytes
        assert peaks["just-in-time"] == pytest.approx(peaks["dense"],
                                                      rel=0.01)

    def test_mm_lr_addition_flops_dominate(self):
        """Table 2: LR addition is the dominant cost of Minimal Memory and
        absent from Just-In-Time."""
        a = laplacian_3d(6)
        cfg_mm = tiny_blr_config(strategy="minimal-memory", tolerance=1e-8)
        _, st_mm = solve_and_check(a, cfg_mm, 1e-4)
        cfg_jit = tiny_blr_config(strategy="just-in-time", tolerance=1e-8)
        _, st_jit = solve_and_check(a, cfg_jit, 1e-4)
        assert st_mm.kernels.flop("lr_addition") > 0
        assert st_jit.kernels.flop("lr_addition") == 0

    def test_tolerance_monotone_memory(self):
        """Figure 6: smaller tolerance => larger ranks => more memory."""
        a = laplacian_3d(8)
        ratios = []
        for tol in (1e-2, 1e-6, 1e-10):
            cfg = tiny_blr_config(strategy="minimal-memory", tolerance=tol)
            _, stats = solve_and_check(a, cfg, max(tol * 100, 1e-8))
            ratios.append(stats.memory_ratio)
        assert ratios[0] <= ratios[1] <= ratios[2] + 0.02


class TestCholesky:
    @pytest.mark.parametrize("strategy", STRATEGIES)
    def test_spd_matrices(self, strategy):
        a = laplacian_3d(5)
        cfg = tiny_blr_config(strategy=strategy, factotype="cholesky",
                              tolerance=1e-8)
        solve_and_check(a, cfg, 1e-4)

    def test_elasticity(self):
        a = elasticity_3d(3)
        cfg = tiny_blr_config(strategy="dense", factotype="cholesky")
        solve_and_check(a, cfg, 1e-10)

    def test_heterogeneous(self):
        a = heterogeneous_poisson_3d(5, contrast=1e4)
        cfg = tiny_blr_config(strategy="minimal-memory",
                              factotype="cholesky", tolerance=1e-10)
        solve_and_check(a, cfg, 1e-5)

    def test_rejects_nonsymmetric(self):
        a = convection_diffusion_3d(4, peclet=0.5)
        cfg = tiny_blr_config(factotype="cholesky")
        with pytest.raises(ValueError, match="symmetric"):
            Solver(a, cfg)

    def test_cholesky_stores_single_side(self):
        a = laplacian_2d(6)
        lu_stats = solve_and_check(
            a, tiny_blr_config(strategy="dense", factotype="lu"), 1e-10)[1]
        ch_stats = solve_and_check(
            a, tiny_blr_config(strategy="dense", factotype="cholesky"),
            1e-10)[1]
        assert ch_stats.factor_nbytes < lu_stats.factor_nbytes


class TestStaticPivoting:
    def test_near_singular_diagonal_is_perturbed(self):
        """A zero diagonal entry inside a supernode triggers static
        pivoting rather than a crash."""
        a = random_spd(40, density=0.15, seed=6)
        # zero out one diagonal entry to force a small pivot
        d = a.to_dense()
        d[17, 17] = 0.0
        from repro.sparse.csc import CSCMatrix
        bad = CSCMatrix.from_dense(d)
        cfg = tiny_blr_config(strategy="dense", pivot_threshold=1e-10)
        s = Solver(bad, cfg)
        s.factorize()
        assert np.isfinite(s.factor.cblks[0].diag).all()


class TestMultipleRHS:
    def test_block_solve(self):
        a = laplacian_3d(4)
        cfg = tiny_blr_config(strategy="dense")
        s = Solver(a, cfg)
        s.factorize()
        rng = np.random.default_rng(3)
        b = rng.standard_normal((a.n, 4))
        x = s.solve(b)
        assert x.shape == (a.n, 4)
        res = np.linalg.norm(a.matvec(x) - b) / np.linalg.norm(b)
        assert res <= 1e-10
