"""Tests for elimination-tree utilities."""

import numpy as np
import pytest

from repro.ordering.elimination_tree import (
    elimination_tree,
    is_postordered,
    postorder,
    subtree_sizes,
    tree_depths,
)
from repro.sparse.csc import CSCMatrix
from repro.sparse.generators import laplacian_2d, random_spd


def reference_etree(a):
    """O(n² fill) reference: parent(j) = min{i > j : L[i,j] != 0} computed
    from the dense filled pattern."""
    d = a.to_dense()
    n = a.n
    filled = (d != 0).astype(float)
    # symbolic no-pivot elimination on the dense pattern
    for k in range(n):
        nz = np.flatnonzero(filled[k + 1:, k]) + k + 1
        for i in nz:
            filled[i, nz] = np.maximum(filled[i, nz], 1)
            filled[nz, i] = np.maximum(filled[nz, i], 1)
    parent = np.full(n, -1, dtype=np.int64)
    for j in range(n):
        below = np.flatnonzero(filled[j + 1:, j]) + j + 1
        if below.size:
            parent[j] = below[0]
    return parent


class TestEliminationTree:
    def test_tridiagonal_is_a_path(self):
        from repro.sparse.generators import laplacian_1d
        parent = elimination_tree(laplacian_1d(5))
        np.testing.assert_array_equal(parent, [1, 2, 3, 4, -1])

    @pytest.mark.parametrize("gen", [lambda: laplacian_2d(4),
                                     lambda: random_spd(25, 0.1, seed=4)])
    def test_matches_dense_reference(self, gen):
        a = gen()
        np.testing.assert_array_equal(elimination_tree(a), reference_etree(a))

    def test_diagonal_matrix_is_forest_of_roots(self):
        a = CSCMatrix.from_coo(4, range(4), range(4), [1.0] * 4)
        np.testing.assert_array_equal(elimination_tree(a), [-1] * 4)

    def test_parent_always_greater(self, small_matrix):
        parent = elimination_tree(small_matrix.symmetrize_pattern())
        for j, p in enumerate(parent):
            assert p == -1 or p > j


class TestPostorder:
    def test_children_before_parents(self):
        parent = np.array([2, 2, 4, 4, -1])
        order = postorder(parent)
        pos = np.empty(5, dtype=int)
        pos[order] = np.arange(5)
        for v, p in enumerate(parent):
            if p != -1:
                assert pos[v] < pos[p]

    def test_postorder_is_permutation(self):
        parent = np.array([3, 3, 3, -1, 5, -1])
        order = postorder(parent)
        assert sorted(order) == list(range(6))

    def test_etree_of_nd_ordered_matrix_is_postordered(self):
        """Nested dissection + our quotient pipeline produce postordered
        trees; the vertex etree of the permuted matrix must satisfy
        parent > child."""
        from repro.ordering.graph import Graph
        from repro.ordering.nested_dissection import nested_dissection
        from repro.sparse.permute import permute_symmetric

        a = laplacian_2d(6)
        nd = nested_dissection(Graph.from_matrix(a), cmin=6)
        ap = permute_symmetric(a, nd.perm)
        parent = elimination_tree(ap)
        for j, p in enumerate(parent):
            assert p == -1 or p > j


class TestTreeMetrics:
    def test_depths(self):
        parent = np.array([1, 2, -1, 2])
        np.testing.assert_array_equal(tree_depths(parent), [2, 1, 0, 1])

    def test_subtree_sizes(self):
        parent = np.array([2, 2, 4, 4, -1])
        np.testing.assert_array_equal(subtree_sizes(parent), [1, 1, 3, 1, 5])

    def test_is_postordered_positive(self):
        parent = np.array([1, 4, 3, 4, -1])
        assert is_postordered(parent)

    def test_is_postordered_negative(self):
        # node 3's subtree {0, 3} is not contiguous
        parent = np.array([3, 2, 4, 4, -1])
        assert not is_postordered(parent)
