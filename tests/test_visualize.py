"""Tests for the symbolic-structure renderers."""

import pytest

from repro.analysis.visualize import (
    structure_stats_table,
    structure_to_ascii,
    structure_to_svg,
)
from repro.core.solver import Solver
from repro.sparse.generators import laplacian_3d
from tests.conftest import tiny_blr_config


@pytest.fixture(scope="module")
def symb():
    s = Solver(laplacian_3d(6), tiny_blr_config())
    return s.analyze()


class TestSvg:
    def test_writes_valid_svg(self, symb, tmp_path):
        path = structure_to_svg(symb, tmp_path / "structure.svg")
        text = path.read_text()
        assert text.startswith("<svg")
        assert text.rstrip().endswith("</svg>")

    def test_one_rect_per_block_plus_mirrors(self, symb, tmp_path):
        path = structure_to_svg(symb, tmp_path / "s.svg")
        nrect = path.read_text().count("<rect")
        expected = 1  # background
        expected += symb.ncblk              # diagonal blocks
        expected += 2 * symb.total_off_blocks()  # L blocks + Uᵗ mirrors
        assert nrect == expected

    def test_lr_candidates_distinct_color(self, tmp_path):
        s = Solver(laplacian_3d(8), tiny_blr_config())
        symb = s.analyze()
        assert symb.n_lr_candidates() > 0
        text = structure_to_svg(symb, tmp_path / "c.svg").read_text()
        assert "#4fa36c" in text  # low-rank green present


class TestAscii:
    def test_dimensions(self, symb):
        art = structure_to_ascii(symb, width=32)
        lines = art.splitlines()
        assert len(lines) == 32
        assert all(len(line) == 32 for line in lines)

    def test_diagonal_marked(self, symb):
        art = structure_to_ascii(symb, width=32).splitlines()
        for i in range(32):
            assert art[i][i] == "#", "diagonal cells must be '#'"

    def test_symmetry_of_pattern(self, symb):
        art = structure_to_ascii(symb, width=32).splitlines()
        for i in range(32):
            for j in range(32):
                if art[i][j] in "*o":
                    assert art[j][i] in "*o#"

    def test_small_matrix_width_clamped(self):
        s = Solver(laplacian_3d(3), tiny_blr_config())
        art = structure_to_ascii(s.analyze(), width=1000)
        assert len(art.splitlines()) == 27


class TestStatsTable:
    def test_contains_key_figures(self, symb):
        table = structure_stats_table(symb)
        assert str(symb.n) in table
        assert str(symb.ncblk) in table
        assert "off-diagonal blocks" in table
