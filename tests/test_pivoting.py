"""Threshold & 2×2 pivoting for indefinite LDLᵀ: kernel, end-to-end,
recovery-ladder, serialization and telemetry coverage.

The committed acceptance story (see docs/robustness.md):

* ``helmholtz_3d(9, wavenumber=3.0)`` — an indefinite zoo matrix whose
  active diagonal passes near zero mid-elimination — breaches a zero
  perturbation budget under static pivoting, but factorizes under
  threshold pivoting at backward error well below 1e-10 with the dense
  strategy *and* the BLR variants;
* the saddle-point ``kkt`` zoo matrix (exactly zero (2,2) block) defeats
  supernode-local threshold pivoting outright, and the escalation ladder
  demonstrably walks relax-threshold → delayed-pivot fallback.
"""

from __future__ import annotations

from types import SimpleNamespace

import numpy as np
import pytest

from repro.analysis.diagnostics import factor_inertia, factor_slogdet
from repro.config import SolverConfig
from repro.core.backend import PivotError, get_backend
from repro.core.solver import Solver
from repro.runtime.recovery import (
    NumericalBreakdown,
    RecoveryPolicy,
    escalate_config,
)
from repro.sparse.generators import helmholtz_3d, saddle_point_kkt
from tests.conftest import tiny_blr_config


@pytest.fixture
def rng():
    return np.random.default_rng(20170529)


def _reconstruct(packed, perm, d21, hermitian):
    """Rebuild P A Pᵀ from the kernel's packed output."""
    n = packed.shape[0]
    lmat = np.tril(packed, -1) + np.eye(n, dtype=packed.dtype)
    d = np.diag(np.diag(packed)).astype(packed.dtype)
    for j in np.flatnonzero(d21):
        d[j + 1, j] = d21[j]
        d[j, j + 1] = np.conj(d21[j]) if hermitian else d21[j]
    lt = lmat.conj().T if hermitian else lmat.T
    return lmat @ d @ lt


class TestPivotKernel:
    def test_dominant_matrix_needs_no_interchanges(self, rng):
        be = get_backend("numpy")
        m = rng.standard_normal((7, 7))
        a = m + m.T + 20.0 * np.eye(7)
        packed, perm, d21, stats = be.ldlt_pivot(a)
        assert np.array_equal(perm, np.arange(7))
        assert stats["swaps"] == 0 and stats["n2x2"] == 0
        assert stats["perturbed"] == 0
        # and the elimination itself matches the unpivoted kernel
        unpiv, _ = be.ldlt(a, 1e-14)
        np.testing.assert_allclose(np.tril(packed), np.tril(unpiv),
                                   rtol=1e-13)

    def test_reconstruction_with_zero_diagonal(self, rng):
        be = get_backend("numpy")
        m = rng.standard_normal((8, 8))
        a = m + m.T
        a[0, 0] = 0.0
        a[4, 4] = 0.0
        packed, perm, d21, stats = be.ldlt_pivot(a)
        assert sorted(perm.tolist()) == list(range(8))
        rec = _reconstruct(packed, perm, d21, hermitian=False)
        ap = a[np.ix_(perm, perm)]
        np.testing.assert_allclose(rec, ap, atol=1e-12 * np.abs(a).max())
        assert stats["swaps"] + stats["n2x2"] > 0

    def test_forced_2x2_pivot(self):
        be = get_backend("numpy")
        a = np.array([[0.0, 1.0], [1.0, 0.0]])
        packed, perm, d21, stats = be.ldlt_pivot(a)
        assert stats["n2x2"] == 1
        assert d21[0] != 0.0
        rec = _reconstruct(packed, perm, d21, hermitian=False)
        np.testing.assert_allclose(rec, a[np.ix_(perm, perm)], atol=1e-14)

    def test_hermitian_reconstruction(self, rng):
        be = get_backend("numpy")
        m = (rng.standard_normal((6, 6))
             + 1j * rng.standard_normal((6, 6)))
        a = m + m.conj().T
        a[0, 0] = 0.0
        packed, perm, d21, stats = be.ldlt_pivot(a)
        rec = _reconstruct(packed, perm, d21, hermitian=True)
        np.testing.assert_allclose(rec, a[np.ix_(perm, perm)],
                                   atol=1e-12 * np.abs(a).max())

    def test_ignores_stale_upper_triangle(self, rng):
        # assembled diagonal blocks are only valid in their lower
        # triangle; the kernel must not let interchanges mix stale upper
        # entries into the active submatrix
        m = rng.standard_normal((6, 6))
        a = m + m.T
        a[0, 0] = 0.0
        poisoned = np.array(a)
        poisoned[np.triu_indices(6, 1)] = 777.0
        be = get_backend("numpy")
        ref = be.ldlt_pivot(a)
        got = be.ldlt_pivot(poisoned)
        np.testing.assert_array_equal(got[0], ref[0])
        np.testing.assert_array_equal(got[1], ref[1])

    def test_zero_matrix_raises_pivot_failure(self):
        be = get_backend("numpy")
        with pytest.raises(PivotError) as ei:
            be.ldlt_pivot(np.zeros((3, 3)))
        assert ei.value.kind == "pivot-failure"

    def test_fallback_perturbs_instead(self):
        be = get_backend("numpy")
        packed, perm, d21, stats = be.ldlt_pivot(np.zeros((3, 3)),
                                                 fallback=True)
        assert stats["perturbed"] == 3
        assert np.all(np.diag(packed) != 0.0)

    def test_growth_limit_enforced(self):
        be = get_backend("numpy")
        a = np.array([[1.0, 2.0], [2.0, 1.0]])
        with pytest.raises(PivotError) as ei:
            be.ldlt_pivot(a, growth_limit=1.0)
        assert ei.value.kind == "pivot-growth"
        # a sane limit accepts the same elimination
        packed, perm, d21, stats = be.ldlt_pivot(a, growth_limit=1e8)
        assert stats["growth"] > 1.0

    def test_per_op_counter(self):
        be = get_backend("numpy")
        before = be.counts_snapshot()
        be.ldlt_pivot(np.eye(3))
        assert be.counts_delta(before)["ldlt_pivot"] == 1


class TestThresholdPivotingE2E:
    STRATEGIES = ("dense", "minimal-memory", "just-in-time")

    def _config(self, strategy, **overrides):
        base = dict(factotype="ldlt", pivoting="threshold",
                    tolerance=1e-12, strategy=strategy)
        base.update(overrides)
        if strategy == "dense":
            return SolverConfig(factotype=base["factotype"],
                                pivoting=base["pivoting"],
                                strategy="dense",
                                recovery=base.get("recovery"))
        return tiny_blr_config(**base)

    @pytest.mark.parametrize("strategy", STRATEGIES)
    def test_indefinite_helmholtz_all_strategies(self, strategy, rng):
        a = helmholtz_3d(9, wavenumber=2.2)
        b = rng.standard_normal(a.n)
        s = Solver(a, self._config(strategy))
        s.factorize()
        x = s.solve(b)
        be = np.linalg.norm(b - a.matvec(x)) / np.linalg.norm(b)
        assert be < 1e-10
        assert s.factor.pivot_swaps > 0   # pivoting genuinely engaged
        assert s.factor.nperturbed == 0   # ...without any perturbation

    def test_acceptance_static_breaches_threshold_succeeds(self, rng):
        """The committed acceptance case (ISSUE): static pivoting blows a
        zero perturbation budget on helmholtz-k3; threshold pivoting
        factorizes the same matrix at BE <= 1e-10, dense and BLR."""
        a = helmholtz_3d(9, wavenumber=3.0)
        b = rng.standard_normal(a.n)
        static = SolverConfig(
            factotype="ldlt", strategy="dense", pivoting="static",
            recovery=RecoveryPolicy(pivot_budget=0.0, max_retries=0))
        with pytest.raises(NumericalBreakdown) as ei:
            Solver(a, static).factorize()
        assert ei.value.cause == "pivot-budget"
        for strategy in self.STRATEGIES:
            s = Solver(a, self._config(strategy))
            s.factorize()
            x = s.solve(b)
            be = np.linalg.norm(b - a.matvec(x)) / np.linalg.norm(b)
            assert be < 1e-10, f"{strategy}: BE {be:.2e}"
            assert s.factor.pivot_swaps + s.factor.pivots_2x2 > 0

    def test_multi_rhs_matches_single(self, rng):
        a = helmholtz_3d(7, wavenumber=3.0)
        s = Solver(a, self._config("dense"))
        s.factorize()
        bmat = rng.standard_normal((a.n, 3))
        xmat = s.solve(bmat)
        for j in range(3):
            np.testing.assert_array_equal(xmat[:, j], s.solve(bmat[:, j]))

    def test_hermitian_indefinite_e2e(self, rng):
        from repro.sparse.csc import CSCMatrix

        m = (rng.standard_normal((24, 24))
             + 1j * rng.standard_normal((24, 24)))
        d = m + m.conj().T
        d[np.diag_indices(24)] = 0.0  # forces 2x2 hermitian pivots
        a = CSCMatrix.from_dense(d)
        b = rng.standard_normal(24) + 1j * rng.standard_normal(24)
        s = Solver(a, SolverConfig(factotype="ldlt", strategy="dense",
                                   pivoting="threshold"))
        s.factorize()
        x = s.solve(b)
        be = np.linalg.norm(b - a.matvec(x)) / np.linalg.norm(b)
        assert be < 1e-10
        assert s.factor.pivots_2x2 > 0

    def test_transpose_solve_with_pivoting(self, rng):
        # refinement uses the transpose solve; with symmetric ldlt the
        # operator is its own transpose, so refine must converge
        a = helmholtz_3d(9, wavenumber=3.0)
        b = rng.standard_normal(a.n)
        s = Solver(a, self._config("dense"))
        s.factorize()
        res = s.refine(b, tol=1e-13, maxiter=10)
        assert res.backward_error < 1e-12


class TestBitIdentityWithPivotingOff:
    """pivoting='static' (the default) must remain bit-identical to the
    pre-pivoting code; the sha256 seed digests in
    test_backend_conformance pin this globally, these are the local
    spot-checks."""

    def test_static_ldlt_unchanged_by_helpers(self, rng):
        from repro.core.factorization import (
            ldlt_d_mul_cols,
            ldlt_d_solve_cols,
            ldlt_d_solve_rows,
        )

        x = rng.standard_normal((5, 4))
        d = rng.standard_normal(4) + 3.0
        np.testing.assert_array_equal(ldlt_d_solve_cols(x, d, None), x / d)
        np.testing.assert_array_equal(
            ldlt_d_solve_rows(x.T, d, None), x.T / d[:, None])
        np.testing.assert_array_equal(ldlt_d_mul_cols(x, d, None), x * d)

    def test_threshold_without_pivots_matches_static(self, rng):
        # SPD matrix: threshold pivoting accepts every pivot in place, so
        # the factors must be bitwise identical to the static kernel's
        from repro.sparse.generators import laplacian_3d
        from tests.test_recovery import factor_digest

        a = laplacian_3d(6)
        digests = []
        for pivoting in ("static", "threshold"):
            s = Solver(a, tiny_blr_config(factotype="ldlt",
                                          strategy="minimal-memory",
                                          tolerance=1e-8,
                                          pivoting=pivoting))
            s.factorize()
            assert s.factor.pivot_swaps == 0
            digests.append(factor_digest(s.factor))
        assert digests[0] == digests[1]


class TestPivotLadder:
    def test_escalate_relax_then_fallback(self):
        cfg = SolverConfig(factotype="ldlt", pivoting="threshold",
                           strategy="dense")
        pol = RecoveryPolicy()
        seen = []
        while True:
            nxt = escalate_config(cfg, pol, cause="pivot-failure")
            if nxt is None or len(seen) > 10:
                break
            seen.append((nxt.pivot_u, nxt.pivot_fallback))
            cfg = nxt
        # four relax rungs (0.1 * 0.25^k >= 1e-4), then the fallback
        assert [u for u, _ in seen[:-1]] == pytest.approx(
            [0.1 * 0.25 ** k for k in range(1, len(seen))])
        assert seen[-1][1] is True
        assert all(not fb for _, fb in seen[:-1])

    def test_escalate_static_budget_to_threshold(self):
        cfg = SolverConfig(factotype="ldlt", pivoting="static",
                           strategy="dense")
        nxt = escalate_config(cfg, RecoveryPolicy(), cause="pivot-budget")
        assert nxt is not None and nxt.pivoting == "threshold"

    def test_non_pivot_cause_ignores_pivot_rungs(self):
        cfg = SolverConfig(factotype="ldlt", pivoting="threshold",
                           strategy="dense")
        assert escalate_config(cfg, RecoveryPolicy(),
                               cause="nan-factor") is None

    def test_ladder_walks_relax_then_fallback_end_to_end(self, rng):
        """The kkt zoo matrix defeats supernode-local pivoting outright;
        the armed solver must walk relax -> fallback and complete."""
        a = saddle_point_kkt(12)
        b = rng.standard_normal(a.n)
        cfg = SolverConfig(factotype="ldlt", strategy="dense",
                           pivoting="threshold",
                           recovery=RecoveryPolicy(max_retries=6))
        s = Solver(a, cfg)
        s.factorize()
        refacs = [act for act in s.last_recovery["actions"]
                  if act["action"] == "refactorize"]
        assert len(refacs) >= 2
        relaxed = [r["pivot_u"] for r in refacs if not r["pivot_fallback"]]
        assert relaxed == sorted(relaxed, reverse=True)  # monotone relax
        assert refacs[-1]["pivot_fallback"] is True      # final rung
        x = s.solve(b)
        res = s.refine(b, tol=1e-10, maxiter=25)
        assert res.backward_error < 1e-6  # perturbed fallback + refinement
        assert np.all(np.isfinite(x))

    def test_static_budget_breach_recovers_via_threshold(self, rng):
        a = helmholtz_3d(9, wavenumber=3.0)
        b = rng.standard_normal(a.n)
        cfg = SolverConfig(factotype="ldlt", strategy="dense",
                           pivoting="static",
                           recovery=RecoveryPolicy(pivot_budget=0.0))
        s = Solver(a, cfg)
        s.factorize()
        causes = [act.get("cause") for act in s.last_recovery["actions"]]
        assert "pivot-budget" in causes
        x = s.solve(b)
        be = np.linalg.norm(b - a.matvec(x)) / np.linalg.norm(b)
        assert be < 1e-10
        assert s.factor.pivot_swaps > 0  # final attempt used threshold

    def test_fallback_perturbations_exempt_from_budget(self, rng):
        # once the ladder enables pivot_fallback its perturbations are
        # sanctioned: a zero budget must not kill the final rung
        a = saddle_point_kkt(12)
        cfg = SolverConfig(factotype="ldlt", strategy="dense",
                           pivoting="threshold",
                           recovery=RecoveryPolicy(max_retries=6,
                                                   pivot_budget=0.0))
        s = Solver(a, cfg)
        s.factorize()
        assert s.factor.nperturbed > 0

    def test_policy_validation(self):
        with pytest.raises(ValueError):
            RecoveryPolicy(pivot_relax=1.5)
        with pytest.raises(ValueError):
            RecoveryPolicy(pivot_u_floor=0.0)


def _fake_ldlt_factor(diags, d21s, dtype=np.float64):
    """Hand-built stand-in NumericFactor for diagnostics unit tests."""
    cblks = []
    for d, d21 in zip(diags, d21s):
        diag = np.diag(np.asarray(d, dtype=dtype))
        piv = None if d21 is None else np.asarray(d21, dtype=dtype)
        cblks.append(SimpleNamespace(diag=diag, pivd21=piv))
    return SimpleNamespace(config=SimpleNamespace(factotype="ldlt"),
                           cblks=cblks,
                           symb=SimpleNamespace(n=sum(len(d) for d in diags)))


class TestInertiaWithPivoting:
    def test_exact_zero_entries_counted(self):
        fac = _fake_ldlt_factor([[2.0, -3.0, 0.0]], [None])
        assert factor_inertia(fac) == (1, 1, 1)

    def test_2x2_negative_determinant(self):
        # canonical Bunch-Kaufman block [[0, 1], [1, 0]]: one each sign
        fac = _fake_ldlt_factor([[0.0, 0.0]], [[1.0, 0.0]])
        assert factor_inertia(fac) == (1, 0, 1)

    def test_2x2_positive_determinant_follows_trace(self):
        fac = _fake_ldlt_factor([[-1.0, -2.0]], [[0.5, 0.0]])
        assert factor_inertia(fac) == (2, 0, 0)
        fac = _fake_ldlt_factor([[2.0, 1.0]], [[0.5, 0.0]])
        assert factor_inertia(fac) == (0, 0, 2)

    def test_2x2_singular_block(self):
        fac = _fake_ldlt_factor([[1.0, 1.0]], [[1.0, 0.0]])
        assert factor_inertia(fac) == (0, 1, 1)

    def test_mixed_blocks_and_singletons(self):
        fac = _fake_ldlt_factor([[3.0, 0.0, 0.0, -4.0]],
                                [[0.0, 1.0, 0.0, 0.0]])
        # singleton +3, 2x2 (0,-4|1) det -1 -> one each sign, plus ... the
        # 2x2 pairs entries 1,2; entry 3 is the -4 singleton
        neg, zero, pos = factor_inertia(fac)
        assert (neg, zero, pos) == (2, 0, 2)

    def test_slogdet_with_2x2_blocks(self):
        fac = _fake_ldlt_factor([[2.0, 0.0, 0.0]], [[0.0, 1.0, 0.0]])
        sign, logdet = factor_slogdet(fac)
        # det = 2 * det([[0,1],[1,0]]) = -2
        assert sign == -1.0
        assert logdet == pytest.approx(np.log(2.0))

    def test_e2e_inertia_matches_eigenvalues(self, rng):
        a = helmholtz_3d(7, wavenumber=3.0)
        ev = np.linalg.eigvalsh(a.to_dense())
        expect = (int((ev < 0).sum()), 0, int((ev > 0).sum()))
        s = Solver(a, SolverConfig(factotype="ldlt", strategy="dense",
                                   pivoting="threshold"))
        s.factorize()
        assert s.factor.pivot_swaps + s.factor.pivots_2x2 > 0
        assert factor_inertia(s.factor) == expect


class TestSerializeWithPivoting:
    def test_factor_roundtrip_preserves_permutations(self, rng, tmp_path):
        from repro.core.serialize import load_factor, save_factor

        a = helmholtz_3d(7, wavenumber=3.0)
        b = rng.standard_normal(a.n)
        s = Solver(a, SolverConfig(factotype="ldlt", strategy="dense",
                                   pivoting="threshold"))
        s.factorize()
        x0 = s.solve(b)
        assert any(nc.pivperm is not None for nc in s.factor.cblks)
        path = save_factor(s.factor, s.perm, tmp_path / "piv.rpz")
        fac2, perm2 = load_factor(path)
        for nc, nc2 in zip(s.factor.cblks, fac2.cblks):
            if nc.pivperm is None:
                assert nc2.pivperm is None
            else:
                np.testing.assert_array_equal(nc.pivperm, nc2.pivperm)
            if nc.pivd21 is None:
                assert nc2.pivd21 is None
            else:
                np.testing.assert_array_equal(nc.pivd21, nc2.pivd21)
        s2 = Solver.load_factor(a, path)
        np.testing.assert_array_equal(s2.solve(b), x0)


class TestPivotTelemetryAndReport:
    def test_record_pivoting_counters(self, rng):
        from repro.runtime.telemetry import Telemetry

        tele = Telemetry()
        a = helmholtz_3d(9, wavenumber=3.0)
        s = Solver(a, SolverConfig(factotype="ldlt", strategy="dense",
                                   pivoting="threshold", telemetry=tele))
        s.factorize()
        snap = tele.snapshot()

        def total(family):
            return sum(c["value"] for c in snap["counters"][family])

        assert total("pivot_swaps") == s.factor.pivot_swaps
        assert total("pivots_2x2") == s.factor.pivots_2x2
        growth = snap["gauges"]["pivot_growth"]
        assert max(g["max"] for g in growth) >= 1.0
        events = [e for e in tele.ring.events()
                  if e.get("kind") == "pivoting"]
        assert events  # at least one pivoted supernode reported

    def test_run_report_carries_pivot_stats(self, rng):
        from repro.analysis.report import render_markdown
        from repro.runtime.telemetry import Telemetry

        a = helmholtz_3d(9, wavenumber=3.0)
        b = rng.standard_normal(a.n)
        s = Solver(a, SolverConfig(factotype="ldlt", strategy="dense",
                                   pivoting="threshold",
                                   telemetry=Telemetry()))
        s.factorize()
        x = s.solve(b)
        rep = s.run_report(workload="helmholtz-k3",
                           backward_error=float(np.linalg.norm(
                               b - a.matvec(x)) / np.linalg.norm(b)))
        piv = rep["pivoting"]
        assert piv["mode"] == "threshold"
        assert piv["swaps"] == s.factor.pivot_swaps
        assert piv["two_by_two"] == s.factor.pivots_2x2
        md = render_markdown(rep)
        assert "Pivoting (threshold/2x2)" in md
