"""Clean fixture: the same operations through sanctioned surfaces."""

import numpy as np


def factor_diag(backend, a):
    return backend.cholesky(a)


def panel_product(backend, l, u):
    return backend.gemm(l, u)


def residual_norm(backend, a, x, b):
    """Diagnostic cold path: one full-length norm per call, outside the
    blocked-kernel protocol."""
    return np.linalg.norm(a @ x - b)


def classify(exc):
    # attribute access (not a call) on np.linalg is fine — exception types
    # live there
    return isinstance(exc, np.linalg.LinAlgError)


def elementwise(a, b):
    # plain ufuncs are not blocked kernels
    return np.maximum(np.abs(a), np.abs(b))
