"""Clean fixture: every telemetry call dominated by an `is not None` test."""


def guarded_direct(fac, k):
    if fac.telemetry is not None:
        fac.telemetry.counter("tasks").inc()


def guarded_alias(config):
    tele = config.telemetry
    if tele is not None:
        tele.emit("phase", {"name": "factor"})


def early_exit(fac):
    if fac.telemetry is None:
        return
    fac.telemetry.event("after-early-exit")


def and_chained(fac, verbose):
    verbose and fac.telemetry is not None and fac.telemetry.event("v")


def ternary(fac):
    return fac.telemetry.snapshot() if fac.telemetry is not None else {}


def closure_retests(fac):
    def task():
        if fac.telemetry is not None:
            fac.telemetry.counter("deferred").inc()
    return task


def guarded_profiler(cfg, k):
    if cfg.profiler is not None:
        cfg.profiler.start("factor", cblk=k)


def profiler_ternary(fac):
    prof = fac.profiler
    return prof.start("solve") if prof is not None else None
