"""Fixture: fully annotated definitions (NOT flagged)."""

from typing import Any


def fully_typed(x: int, *args: int, **kwargs: Any) -> int:
    return x + sum(args)


def outer() -> None:
    def inner(y: float) -> float:
        return y

    inner(1.0)


class Thing:
    def method(self, a: str) -> str:      # self needs no annotation
        return a

    @classmethod
    def build(cls) -> "Thing":            # cls needs no annotation
        return cls()
