"""Fixture: scheduler-worker mutations violating lock-discipline."""

import threading
from typing import Dict, List


def run_unlocked(n: int) -> Dict[int, int]:
    lock = threading.Lock()
    done: Dict[int, int] = {}
    errors: List[BaseException] = []

    def worker(tid: int) -> None:
        try:
            done[tid] = tid * 2          # shared mutation WITHOUT the lock
            errors.append(RuntimeError("x"))  # shared append WITHOUT the lock
        except Exception:
            pass                          # swallowed worker exception

    threads = [threading.Thread(target=worker, args=(i,)) for i in range(n)]
    for th in threads:
        th.start()
    for th in threads:
        th.join()
    assert lock is not None
    return done


def bare_except(x: int) -> int:
    try:
        return 1 // x
    except:                               # bare except hides KeyboardInterrupt
        return 0
