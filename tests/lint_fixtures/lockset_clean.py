"""Clean fixture: every worker-reachable shared mutation holds the same
lock — directly, through a local alias, or in a nested `with`."""

import threading


class Pool:
    def __init__(self):
        self._lock = threading.Lock()
        self._aux = threading.Lock()
        self.counter = 0
        self.log = []
        self.nested = 0

    def bump(self):
        with self._lock:
            self.counter += 1

    def push(self, item):
        # lock aliasing through a local: `lk` IS self._lock
        lk = self._lock
        with lk:
            self.log.append(item)

    def deep(self):
        # nested `with`: the inner mutation holds both locks; the common
        # lock across all sites of `nested` is still self._lock
        with self._lock:
            with self._aux:
                self.nested += 1

    def scratch(self):
        # task-owned fresh container: never shared, no lock needed
        local = []
        local.append(1)
        return local


def worker(pool):
    pool.bump()
    pool.push("x")
    pool.deep()
    pool.scratch()


def run(pool):
    threads = [threading.Thread(target=worker, args=(pool,))
               for _ in range(4)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
