"""Fixture: conjugation outside the declared adjoint surface (flagged)."""

import numpy as np


def plain_product(u: np.ndarray, v: np.ndarray) -> np.ndarray:
    """Low-rank reconstruction — pure transpose territory."""
    return u @ v.conj().T                  # conj outside adjoint surface


def stray_npconj(x: np.ndarray) -> np.ndarray:
    return np.conj(x)                      # bare conjugation, no declaration


def stray_trans_c(l00: np.ndarray, b: np.ndarray) -> np.ndarray:
    import scipy.linalg as sla
    return sla.solve_triangular(l00, b, trans="C")   # adjoint solve, undeclared
