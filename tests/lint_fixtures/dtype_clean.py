"""Fixture: dtype-aware allocation idioms that must NOT be flagged."""

import numpy as np


def good_workspace(a: np.ndarray) -> np.ndarray:
    w = np.zeros((a.shape[0], 4), dtype=a.dtype)
    taus = np.empty(4, dtype=a.dtype)
    q = np.zeros_like(a)
    return w + taus.sum() + q


def good_literals(a: np.ndarray, n: int) -> np.ndarray:
    # python float literals do not promote float32 arrays under NEP 50
    scaled = a * 2.0 + 1.0
    # np.full derives its dtype from the fill value / dtype= argument
    filled = np.full(n, 2.0)
    explicit = np.zeros(n, dtype=np.float64)
    return scaled.sum() + filled + explicit


def good_astype(a: np.ndarray) -> np.ndarray:
    return a.astype(np.result_type(a, np.float32))
