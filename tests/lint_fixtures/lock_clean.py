"""Fixture: disciplined scheduler-worker code that must NOT be flagged."""

import queue
import threading
from typing import Dict, List


def run_locked(n: int) -> Dict[int, int]:
    lock = threading.Lock()
    done: Dict[int, int] = {}
    errors: List[BaseException] = []
    tasks: "queue.Queue[int]" = queue.Queue()

    def worker(tid: int) -> None:
        local_count = 0                   # locals are thread-owned: fine
        local_count += 1
        try:
            with lock:
                done[tid] = tid * 2       # shared mutation under the lock
            tasks.put(tid)                # queue.Queue is thread-safe
        except Exception as exc:
            with lock:
                errors.append(exc)        # recorded, not swallowed

    threads = [threading.Thread(target=worker, args=(i,)) for i in range(n)]
    for th in threads:
        th.start()
    for th in threads:
        th.join()
    if errors:
        raise errors[0]
    return done
