"""Clean fixture: variant decisions consulted through the decision object."""


def pick_kernel(decision):
    if decision.compress_early:
        return "assemble-compressed"
    return "assemble-dense"


def compress_point(decision):
    if decision.jit_compression:
        return "late"
    return "early"


def dense_is_fine(strategy):
    # "dense" is deliberately not a variant literal — it names the
    # no-compression baseline, not a BLR loop order
    return strategy == "dense"


def label(order):
    # building strings from an order is fine; only *comparisons* re-encode
    # the variant dispatch
    return "variant-" + order
