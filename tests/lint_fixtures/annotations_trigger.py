"""Fixture: missing annotations (flagged by missing-annotations)."""


def no_return_type(x: int):
    return x + 1


def untyped_param(x) -> int:
    return x + 1


def outer() -> None:
    def inner(y):                         # nested functions are checked too
        return y

    inner(1)


class Thing:
    def method(self, a, *args, **kwargs):
        return a
