"""Fixture: legitimate per-column / bookkeeping loops (NOT flagged)."""

import numpy as np


def householder_sweep(w: np.ndarray, taus: np.ndarray) -> np.ndarray:
    for k in range(w.shape[1]):
        v = w[k:, k].copy()              # slice read: vectorized step
        tau = 2.0 / max(float(v @ v), 1.0)
        taus[k] = tau                    # scalar bookkeeping only
        w[k:, k:] -= np.outer(v, tau * (v @ w[k:, k:]))
    return w


def block_walk(blocks: list, x: np.ndarray) -> np.ndarray:
    for i in range(len(blocks)):
        x = blocks[i] @ x                # per-block, not per-element
    return x
