"""Fixture: legitimate conjugation sites that must NOT be flagged."""

import numpy as np


class Block:
    def __init__(self, u: np.ndarray, v: np.ndarray) -> None:
        self.u = u
        self.v = v

    def rmatvec(self, x: np.ndarray) -> np.ndarray:
        # rmatvec IS the adjoint surface (allowed by function name)
        return self.v @ (self.u.conj().T @ x)

    def conj(self) -> "Block":
        # defining elementwise conjugation itself is allowed
        return Block(self.u.conj(), self.v.conj())


def hermitian_panel_solve(l00: np.ndarray, v: np.ndarray) -> np.ndarray:
    """Hermitian panel solve: v <- (L00^-H v^H)^H (docstring-declared)."""
    import scipy.linalg as sla
    return sla.solve_triangular(l00, v.conj(), lower=True).conj()


def frobenius_norm2(r: np.ndarray) -> float:
    # self-inner-product: conjugated operand equals the other einsum arg
    return float(np.einsum("ij,ij->", r.conj(), r).real)
