"""Fixture: suppression pragma placements for the machinery tests."""

import numpy as np


def same_line(n: int) -> np.ndarray:
    return np.zeros(n)  # solverlint: ignore[dtype-literal-promotion] -- fixture: same-line pragma


def previous_line(n: int) -> np.ndarray:
    # solverlint: ignore[dtype-literal-promotion] -- fixture: previous-line pragma
    return np.zeros(n)


def statement_opener(n: int) -> np.ndarray:
    w = np.zeros(  # solverlint: ignore[dtype-literal-promotion] -- fixture: multi-line statement opener
        (n,
         n),
    )
    return w


def unjustified(n: int) -> np.ndarray:
    return np.empty(n)  # solverlint: ignore[dtype-literal-promotion]


def unused_pragma(n: int) -> np.ndarray:
    # solverlint: ignore[dtype-literal-promotion] -- fixture: nothing fires here
    return np.zeros(n, dtype=np.float32)


def foreign_rule_pragma(n: int) -> np.ndarray:
    # a pragma for a rule not in the current run must never count as unused
    # solverlint: ignore[python-hot-loop] -- fixture: foreign-rule pragma
    return np.zeros(n, dtype=np.float32)


def unknown_rule(n: int) -> np.ndarray:
    return np.zeros(n, dtype=np.float32)  # solverlint: ignore[no-such-rule] -- fixture: unknown rule name
