"""Fixture: every statement below violates dtype-literal-promotion."""

import numpy as np


def bad_workspace(a: np.ndarray) -> np.ndarray:
    w = np.zeros((a.shape[0], 4))          # no dtype= -> float64
    taus = np.empty(4)                     # no dtype= -> float64
    q = np.ones(3)                         # no dtype= -> float64
    eye = np.eye(4)                        # no dtype= -> float64
    ident = np.identity(3)                 # no dtype= -> float64
    return w + taus.sum() + q.sum() + eye.sum() + ident.sum()


def bad_builtin_dtype(a: np.ndarray) -> np.ndarray:
    w = np.zeros(a.shape, dtype=float)     # builtin float == float64
    z = np.zeros(a.shape, dtype=complex)   # builtin complex == complex128
    return w + z


def bad_astype(a: np.ndarray) -> np.ndarray:
    return a.astype(float)                 # promotes float32 input


def bad_promoting_scalar(a: np.ndarray) -> np.ndarray:
    return a * np.float64(2.0)             # NEP 50: float64 scalar promotes
