"""Trigger fixture: worker-reachable shared mutations with empty or
inconsistent locksets."""

import threading


class Pool:
    def __init__(self):
        self._lock = threading.Lock()
        self._aux = threading.Lock()
        self.counter = 0
        self.log = []
        self.split = 0

    def bump(self):
        # finding: unguarded read-modify-write on a shared attribute
        self.counter += 1

    def push(self, item):
        # finding: unguarded mutator call on a shared container
        self.log.append(item)

    def split_a(self):
        with self._lock:
            self.split += 1

    def split_b(self):
        # finding (inconsistent): same attribute guarded by a DIFFERENT
        # lock than split_a — the two locksets are disjoint
        with self._aux:
            self.split += 1


def worker(pool):
    pool.bump()
    pool.push("x")
    pool.split_a()
    pool.split_b()


def run(pool):
    threads = [threading.Thread(target=worker, args=(pool,))
               for _ in range(4)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
