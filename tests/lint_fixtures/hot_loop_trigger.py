"""Fixture: per-element Python loops over ndarrays (flagged)."""

import numpy as np


def axpy_elementwise(a: np.ndarray, x: np.ndarray, y: np.ndarray) -> np.ndarray:
    for i in range(y.shape[0]):
        y[i] = y[i] + a[i] * x[i]        # element read+write per iteration
    return y


def accumulate_elementwise(h: np.ndarray, n: int) -> np.ndarray:
    for j in range(n):
        h[j, 0] += h[j, 1]               # AugAssign counts too
    return h
