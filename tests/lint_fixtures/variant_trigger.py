"""Trigger fixture: variant/strategy string literals compared outside
core/variants.py and config.py."""


def pick_kernel(strategy):
    if strategy == "minimal-memory":  # finding: strategy literal
        return "assemble-compressed"
    return "assemble-dense"


def compress_point(order):
    if order != "cuf":  # finding: loop-order literal
        return "late"
    return "early"


def is_compress_last(order):
    return order in ("ufc", "fuc")  # finding: loop-order literals


def wants_jit(cfg):
    return cfg.strategy == "just-in-time"  # finding: strategy literal
