"""Trigger fixture: telemetry calls not dominated by an `is not None` test."""


def unguarded_direct(fac, k):
    fac.telemetry.counter("tasks").inc()  # finding: no None guard


def unguarded_alias(config):
    tele = config.telemetry
    tele.emit("phase", {"name": "factor"})  # finding: alias never tested


def guard_wrong_branch(fac):
    if fac.telemetry is None:
        fac.telemetry.event("oops")  # finding: guarded by the WRONG branch


def closure_does_not_inherit(fac):
    if fac.telemetry is not None:
        def task():
            # finding: facts do not flow into closures (the closure may run
            # after telemetry is detached) — it must re-test
            fac.telemetry.counter("deferred").inc()
        return task
    return None


def unguarded_profiler(cfg, k):
    cfg.profiler.start("factor", cblk=k)  # finding: span call, no guard


def profiler_alias(fac):
    prof = fac.profiler
    prof.end(None)  # finding: profiler alias never tested
