"""Trigger fixture: raw numpy/scipy linear algebra outside the backend."""

import numpy as np
import scipy.linalg as sla


def factor_diag(a):
    return np.linalg.cholesky(a)  # finding: np.linalg call


def panel_product(l, u):
    return np.dot(l, u)  # finding: blocked np top-level kernel


def dense_solve(a, b):
    return sla.solve(a, b)  # finding: scipy call


def contract(u, v):
    return np.einsum("ij,jk->ik", u, v)  # finding: np.einsum
