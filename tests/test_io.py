"""Tests for Matrix Market I/O."""

import numpy as np
import pytest

from repro.sparse.csc import CSCMatrix
from repro.sparse.generators import laplacian_2d, random_spd
from repro.sparse.io import read_matrix_market, write_matrix_market


class TestRoundtrip:
    def test_general(self, tmp_path, rng):
        d = rng.standard_normal((6, 6))
        d[np.abs(d) < 0.7] = 0.0
        a = CSCMatrix.from_dense(d)
        path = tmp_path / "a.mtx"
        write_matrix_market(a, path)
        back = read_matrix_market(path)
        np.testing.assert_allclose(back.to_dense(), a.to_dense())

    def test_symmetric(self, tmp_path):
        a = laplacian_2d(4)
        path = tmp_path / "lap.mtx"
        write_matrix_market(a, path, symmetric=True)
        back = read_matrix_market(path)
        np.testing.assert_allclose(back.to_dense(), a.to_dense())
        # the symmetric file stores only one triangle
        text = path.read_text()
        header, counts = text.splitlines()[:2]
        assert "symmetric" in header
        stored = int(counts.split()[2])
        assert stored < a.nnz

    def test_gzip(self, tmp_path):
        a = random_spd(20, seed=1)
        path = tmp_path / "a.mtx.gz"
        write_matrix_market(a, path)
        back = read_matrix_market(path)
        np.testing.assert_allclose(back.to_dense(), a.to_dense())

    def test_values_survive_exactly(self, tmp_path):
        a = CSCMatrix.from_coo(2, [0, 1], [0, 1], [1.0 / 3.0, np.pi])
        path = tmp_path / "exact.mtx"
        write_matrix_market(a, path)
        back = read_matrix_market(path)
        np.testing.assert_array_equal(back.values, a.values)


class TestReaderValidation:
    def test_rejects_non_mm(self, tmp_path):
        p = tmp_path / "bad.mtx"
        p.write_text("hello\n1 1 0\n")
        with pytest.raises(ValueError, match="MatrixMarket"):
            read_matrix_market(p)

    def test_rejects_array_format(self, tmp_path):
        p = tmp_path / "bad.mtx"
        p.write_text("%%MatrixMarket matrix array real general\n2 2\n1\n2\n3\n4\n")
        with pytest.raises(ValueError, match="coordinate"):
            read_matrix_market(p)

    def test_reads_complex(self, tmp_path):
        p = tmp_path / "cplx.mtx"
        p.write_text("%%MatrixMarket matrix coordinate complex general\n"
                     "2 2 3\n1 1 1.0 0.0\n2 2 2.0 -0.5\n1 2 0.0 3.0\n")
        a = read_matrix_market(p)
        assert a.values.dtype == np.complex128
        dense = a.to_dense()
        assert dense[0, 0] == 1.0
        assert dense[1, 1] == 2.0 - 0.5j
        assert dense[0, 1] == 3.0j

    def test_rejects_unknown_field(self, tmp_path):
        p = tmp_path / "bad.mtx"
        p.write_text("%%MatrixMarket matrix coordinate hexadecimal general\n"
                     "1 1 1\n1 1 ff\n")
        with pytest.raises(ValueError, match="field"):
            read_matrix_market(p)

    def test_rejects_rectangular(self, tmp_path):
        p = tmp_path / "bad.mtx"
        p.write_text("%%MatrixMarket matrix coordinate real general\n"
                     "2 3 1\n1 1 1.0\n")
        with pytest.raises(ValueError, match="square"):
            read_matrix_market(p)

    def test_skips_comments(self, tmp_path):
        p = tmp_path / "ok.mtx"
        p.write_text("%%MatrixMarket matrix coordinate real general\n"
                     "% a comment\n% another\n"
                     "2 2 2\n1 1 3.0\n2 2 4.0\n")
        a = read_matrix_market(p)
        np.testing.assert_allclose(a.to_dense(), [[3, 0], [0, 4]])

    def test_pattern_matrices_read_as_ones(self, tmp_path):
        p = tmp_path / "pat.mtx"
        p.write_text("%%MatrixMarket matrix coordinate pattern symmetric\n"
                     "2 2 2\n1 1\n2 1\n")
        a = read_matrix_market(p)
        np.testing.assert_allclose(a.to_dense(), [[1, 1], [1, 0]])
