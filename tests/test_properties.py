"""Property-based tests (hypothesis) on core invariants.

These cover the paper's key algebraic guarantees on randomized inputs:
compression error bounds, extend-add exactness, permutation round-trips,
and the structural invariants of the analysis pipeline.
"""

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.lowrank.kernels import lr2lr_update, lr_product
from repro.lowrank.recompress import recompress_rrqr, recompress_svd
from repro.lowrank.rrqr import rrqr, rrqr_compress, rrqr_lapack
from repro.lowrank.svd import svd_compress
from repro.sparse.csc import CSCMatrix
from repro.sparse.permute import (
    invert_permutation,
    permute_symmetric,
    is_permutation,
)

COMMON = dict(deadline=None,
              suppress_health_check=[HealthCheck.too_slow])


@st.composite
def lowrank_matrices(draw, max_dim=40):
    m = draw(st.integers(2, max_dim))
    n = draw(st.integers(2, max_dim))
    r = draw(st.integers(1, min(m, n)))
    seed = draw(st.integers(0, 2**31 - 1))
    decay = draw(st.floats(0.1, 0.9))
    rng = np.random.default_rng(seed)
    u = rng.standard_normal((m, r))
    v = rng.standard_normal((n, r))
    s = decay ** np.arange(r)
    return (u * s) @ v.T


@st.composite
def tolerances(draw):
    return 10.0 ** draw(st.integers(-12, -2))


class TestCompressionProperties:
    @given(a=lowrank_matrices(), tol=tolerances())
    @settings(max_examples=40, **COMMON)
    def test_svd_error_bound(self, a, tol):
        lr = svd_compress(a, tol)
        norm = np.linalg.norm(a)
        if norm > 0:
            assert np.linalg.norm(a - lr.to_dense()) <= tol * norm * 1.01

    @given(a=lowrank_matrices(), tol=tolerances())
    @settings(max_examples=40, **COMMON)
    def test_rrqr_error_bound(self, a, tol):
        lr = rrqr_compress(a, tol)
        norm = np.linalg.norm(a)
        if norm > 0:
            assert np.linalg.norm(a - lr.to_dense()) <= tol * norm * 1.01

    @given(a=lowrank_matrices(max_dim=25), tol=tolerances())
    @settings(max_examples=25, **COMMON)
    def test_householder_matches_lapack_bound(self, a, tol):
        for impl in (rrqr, rrqr_lapack):
            res = impl(a, tol)
            if res.converged and res.q.shape[1]:
                approx = res.q @ res.r
                err = np.linalg.norm(a[:, res.jpvt] - approx)
                assert err <= tol * np.linalg.norm(a) * 1.01

    @given(a=lowrank_matrices(), tol=tolerances())
    @settings(max_examples=40, **COMMON)
    def test_u_orthonormal_both_kernels(self, a, tol):
        for compress in (svd_compress, rrqr_compress):
            lr = compress(a, tol)
            if lr.rank:
                gram = lr.u.T @ lr.u
                assert np.allclose(gram, np.eye(lr.rank), atol=1e-10)


class TestUpdateProperties:
    @given(seed=st.integers(0, 2**31 - 1), tol=tolerances())
    @settings(max_examples=30, **COMMON)
    def test_lr_product_exact_at_tolerance(self, seed, tol):
        rng = np.random.default_rng(seed)
        ra, rb = rng.integers(1, 6), rng.integers(1, 6)
        a = rrqr_compress(rng.standard_normal((20, ra)) @
                          rng.standard_normal((15, ra)).T, 1e-14)
        b = rrqr_compress(rng.standard_normal((18, rb)) @
                          rng.standard_normal((15, rb)).T, 1e-14)
        out = lr_product(a, b, tol, "rrqr")
        ref = a.to_dense() @ b.to_dense().T
        got = np.zeros_like(ref) if out is None else out.to_dense()
        assert np.linalg.norm(got - ref) <= \
            3 * tol * max(np.linalg.norm(ref), 1e-30) + 1e-12

    @given(seed=st.integers(0, 2**31 - 1), tol=tolerances(),
           kernel=st.sampled_from(["svd", "rrqr"]))
    @settings(max_examples=30, **COMMON)
    def test_extend_add_error_bound(self, seed, tol, kernel):
        rng = np.random.default_rng(seed)
        m, n = 24, 20
        mi, ni = rng.integers(2, m + 1), rng.integers(2, n + 1)
        ro = rng.integers(0, m - mi + 1)
        co = rng.integers(0, n - ni + 1)
        target = rrqr_compress(
            rng.standard_normal((m, 4)) @ rng.standard_normal((n, 4)).T,
            1e-14)
        contrib = rrqr_compress(
            rng.standard_normal((mi, 3)) @ rng.standard_normal((ni, 3)).T,
            1e-14)
        ref = target.to_dense()
        ref[ro:ro + mi, co:co + ni] -= contrib.to_dense()
        out = lr2lr_update(target, contrib, int(ro), int(co), tol, kernel)
        assert out is not None
        scale = max(np.linalg.norm(ref), 1.0)
        assert np.linalg.norm(out.to_dense() - ref) <= 5 * tol * scale

    @given(seed=st.integers(0, 2**31 - 1))
    @settings(max_examples=25, **COMMON)
    def test_recompress_self_cancellation(self, seed):
        rng = np.random.default_rng(seed)
        c = rrqr_compress(rng.standard_normal((15, 3)) @
                          rng.standard_normal((12, 3)).T, 1e-14)
        for recompress in (recompress_svd, recompress_rrqr):
            out = recompress(c.u, c.v, c.u, c.v, 1e-8)
            assert np.linalg.norm(out.to_dense()) <= \
                1e-7 * np.linalg.norm(c.to_dense())


class TestSparseProperties:
    @given(seed=st.integers(0, 2**31 - 1), n=st.integers(2, 30))
    @settings(max_examples=30, **COMMON)
    def test_csc_dense_roundtrip(self, seed, n):
        rng = np.random.default_rng(seed)
        d = rng.standard_normal((n, n))
        d[rng.random((n, n)) < 0.6] = 0.0
        a = CSCMatrix.from_dense(d)
        np.testing.assert_array_equal(a.to_dense(), d)

    @given(seed=st.integers(0, 2**31 - 1), n=st.integers(2, 25))
    @settings(max_examples=30, **COMMON)
    def test_permutation_roundtrip(self, seed, n):
        rng = np.random.default_rng(seed)
        d = rng.standard_normal((n, n))
        d[rng.random((n, n)) < 0.5] = 0.0
        d = d + d.T  # symmetric pattern
        a = CSCMatrix.from_dense(d)
        p = rng.permutation(n)
        ap = permute_symmetric(a, p)
        back = permute_symmetric(ap, invert_permutation(p))
        np.testing.assert_allclose(back.to_dense(), a.to_dense())

    @given(seed=st.integers(0, 2**31 - 1), n=st.integers(3, 40))
    @settings(max_examples=20, **COMMON)
    def test_nested_dissection_always_valid(self, seed, n):
        from repro.ordering.graph import Graph
        from repro.ordering.nested_dissection import nested_dissection
        rng = np.random.default_rng(seed)
        nedges = int(rng.integers(0, 3 * n))
        edges = rng.integers(0, n, size=(nedges, 2))
        g = Graph.from_edges(n, [tuple(e) for e in edges])
        nd = nested_dissection(g, cmin=int(rng.integers(1, 8)))
        assert is_permutation(nd.perm, n)
        pos = 0
        for p in nd.partitions:
            assert p.start == pos
            pos = p.end
        assert pos == n


class TestEndToEndProperty:
    @given(seed=st.integers(0, 2**31 - 1))
    @settings(max_examples=10, **COMMON)
    def test_random_spd_always_solvable(self, seed):
        from repro.core.solver import Solver
        from repro.sparse.generators import random_spd
        from tests.conftest import tiny_blr_config
        a = random_spd(35, density=0.1, seed=seed)
        s = Solver(a, tiny_blr_config(strategy="minimal-memory",
                                      tolerance=1e-8))
        s.factorize()
        rng = np.random.default_rng(seed)
        b = rng.standard_normal(a.n)
        x = s.solve(b)
        assert s.backward_error(x, b) <= 1e-4


class TestGeometricProperties:
    @given(seed=st.integers(0, 2**31 - 1),
           nx=st.integers(3, 8), ny=st.integers(3, 8), nz=st.integers(1, 5))
    @settings(max_examples=20, **COMMON)
    def test_plane_splitter_always_separates(self, seed, nx, ny, nz):
        from repro.ordering.geometric import grid_coords, make_plane_splitter
        from repro.ordering.graph import Graph
        from repro.ordering.separator import check_separator
        from repro.sparse.generators import laplacian_3d

        g = Graph.from_matrix(laplacian_3d(nx, ny, nz))
        splitter = make_plane_splitter(grid_coords(nx, ny, nz))
        rng = np.random.default_rng(seed)
        # also exercise proper sub-regions, not just the full grid
        verts = np.sort(rng.choice(g.n, size=max(4, g.n * 3 // 4),
                                   replace=False))
        pa, pb, sep = splitter(g, verts)
        combined = np.sort(np.concatenate([pa, pb, sep]))
        np.testing.assert_array_equal(combined, verts)
        assert check_separator(g, pa, pb, sep)

    @given(nx=st.integers(3, 7))
    @settings(max_examples=10, **COMMON)
    def test_geometric_solver_correct(self, nx):
        from repro.core.solver import Solver
        from repro.ordering.geometric import grid_coords
        from repro.sparse.generators import laplacian_3d
        from tests.conftest import tiny_blr_config

        a = laplacian_3d(nx)
        cfg = tiny_blr_config(strategy="dense", ordering="geometric")
        s = Solver(a, cfg, coords=grid_coords(nx, nx, nx))
        s.factorize()
        b = np.ones(a.n)
        assert np.linalg.norm(a.matvec(s.solve(b)) - b) <= 1e-9 * a.n


class TestKernelFamilyProperties:
    @given(a=lowrank_matrices(max_dim=30), tol=tolerances(),
           kernel=st.sampled_from(["svd", "rrqr", "rsvd", "aca"]))
    @settings(max_examples=40, **COMMON)
    def test_all_kernels_honour_tolerance(self, a, tol, kernel):
        from repro.lowrank.kernels import compress_block
        lr = compress_block(a, tol, kernel)
        norm = np.linalg.norm(a)
        if lr is not None and norm > 0:
            assert np.linalg.norm(a - lr.to_dense()) <= tol * norm * 1.1

    @given(a=lowrank_matrices(max_dim=25),
           kernel=st.sampled_from(["svd", "rrqr", "rsvd", "aca"]))
    @settings(max_examples=25, **COMMON)
    def test_all_kernels_keep_u_orthonormal(self, a, kernel):
        from repro.lowrank.kernels import compress_block
        lr = compress_block(a, 1e-8, kernel)
        if lr is not None and lr.rank:
            gram = lr.u.T @ lr.u
            assert np.allclose(gram, np.eye(lr.rank), atol=1e-9)
