"""Tests for the mixed dense/low-rank triangular solves."""

import numpy as np
import pytest

from repro.core.solver import Solver
from repro.core.trisolve import solve_factored
from repro.sparse.generators import laplacian_2d, laplacian_3d
from repro.sparse.permute import permute_symmetric
from tests.conftest import tiny_blr_config


def factored(a, **cfg_overrides):
    s = Solver(a, tiny_blr_config(**cfg_overrides))
    s.factorize()
    return s


class TestLuSolve:
    def test_matches_dense_solve(self, rng):
        a = laplacian_2d(6)
        s = factored(a, strategy="dense")
        ap = permute_symmetric(a, s.perm)
        b = rng.standard_normal(a.n)
        x = solve_factored(s.factor, b)
        ref = np.linalg.solve(ap.to_dense(), b)
        np.testing.assert_allclose(x, ref, atol=1e-10)

    def test_identity_rhs_gives_inverse(self):
        a = laplacian_2d(4)
        s = factored(a, strategy="dense")
        ap = permute_symmetric(a, s.perm).to_dense()
        inv = solve_factored(s.factor, np.eye(a.n))
        np.testing.assert_allclose(ap @ inv, np.eye(a.n), atol=1e-9)

    def test_lowrank_blocks_used_in_solve(self, rng):
        """Solve through a factor that actually holds LR blocks."""
        a = laplacian_3d(8)
        s = factored(a, strategy="minimal-memory", tolerance=1e-8)
        assert s.stats.nblocks_compressed > 0
        b = rng.standard_normal(a.n)
        x = s.solve(b)
        assert s.backward_error(x, b) <= 1e-5


class TestCholeskySolve:
    def test_matches_dense_solve(self, rng):
        a = laplacian_2d(6)
        s = factored(a, strategy="dense", factotype="cholesky")
        ap = permute_symmetric(a, s.perm)
        b = rng.standard_normal(a.n)
        x = solve_factored(s.factor, b)
        np.testing.assert_allclose(x, np.linalg.solve(ap.to_dense(), b),
                                   atol=1e-10)


class TestShapes:
    def test_vector_in_vector_out(self, rng):
        a = laplacian_2d(4)
        s = factored(a, strategy="dense")
        x = solve_factored(s.factor, rng.standard_normal(a.n))
        assert x.ndim == 1

    def test_block_rhs(self, rng):
        a = laplacian_2d(4)
        s = factored(a, strategy="dense")
        b = rng.standard_normal((a.n, 5))
        x = solve_factored(s.factor, b)
        assert x.shape == (a.n, 5)
        ap = permute_symmetric(a, s.perm).to_dense()
        np.testing.assert_allclose(ap @ x, b, atol=1e-9)

    def test_input_not_modified(self, rng):
        a = laplacian_2d(4)
        s = factored(a, strategy="dense")
        b = rng.standard_normal(a.n)
        b0 = b.copy()
        solve_factored(s.factor, b)
        np.testing.assert_array_equal(b, b0)


class TestMultiRhsBitwise:
    """Blocked ``(n, k)`` panel solves equal column-by-column single-RHS
    solves *bit for bit* — the column-stability contract of the panel
    kernels, end to end through the mixed dense/LR solve."""

    @pytest.mark.parametrize("strategy,factotype", [
        ("dense", "lu"),
        ("dense", "cholesky"),
        ("dense", "ldlt"),
        ("just-in-time", "lu"),
        ("minimal-memory", "lu"),
        ("minimal-memory", "cholesky"),
    ])
    def test_panel_equals_columns(self, rng, strategy, factotype):
        a = laplacian_3d(5)
        s = factored(a, strategy=strategy, factotype=factotype,
                     tolerance=1e-8)
        b = rng.standard_normal((a.n, 6))
        full = solve_factored(s.factor, b)
        for j in range(6):
            col = solve_factored(s.factor, np.ascontiguousarray(b[:, j]))
            np.testing.assert_array_equal(full[:, j], col)

    def test_panel_equals_columns_transposed(self, rng):
        a = laplacian_3d(5)
        s = factored(a, strategy="minimal-memory", tolerance=1e-8)
        b = rng.standard_normal((a.n, 4))
        full = solve_factored(s.factor, b, trans=True)
        for j in range(4):
            col = solve_factored(s.factor, np.ascontiguousarray(b[:, j]),
                                 trans=True)
            np.testing.assert_array_equal(full[:, j], col)

    def test_width_does_not_change_bits(self, rng):
        """The same column gives the same bits in a k=2 and a k=9 panel."""
        a = laplacian_3d(5)
        s = factored(a, strategy="just-in-time", tolerance=1e-8)
        b = rng.standard_normal((a.n, 9))
        wide = solve_factored(s.factor, b)
        narrow = solve_factored(s.factor, np.ascontiguousarray(b[:, :2]))
        np.testing.assert_array_equal(wide[:, :2], narrow)
