"""Tests for the Eraser-style dynamic race sanitizer.

Two layers: unit tests drive :class:`RaceSanitizer`'s lockset state
machine directly from real threads (virgin → exclusive → shared,
intersection, epoch/handoff, tracked lock proxies), and integration tests
run the full threaded factorization under ``sanitize=True`` — clean runs
must stay silent AND bit-identical to the sequential factors across both
schedulers and all four loop orders, while the injector's seeded race must
be caught loudly with both access sites named.
"""

from __future__ import annotations

import json
import threading

import pytest

from repro.config import SolverConfig
from repro.core.solver import Solver
from repro.runtime.faults import FaultInjector
from repro.runtime.sanitizer import RaceReport, RaceSanitizer, TrackedLock
from repro.sparse.generators import laplacian_2d
from tests.conftest import tiny_blr_config
from tests.test_recovery import factor_digest


def in_thread(fn, name):
    t = threading.Thread(target=fn, name=name)
    t.start()
    t.join()


# ----------------------------------------------------------------------
# unit: the lockset state machine
# ----------------------------------------------------------------------

class TestLocksetStateMachine:
    def test_single_thread_never_races(self):
        san = RaceSanitizer()
        for _ in range(10):
            san.note("v", "write", site="here")
        assert san.races() == []
        san.check()  # no raise

    def test_unguarded_cross_thread_write_is_a_race(self):
        san = RaceSanitizer()
        in_thread(lambda: san.note("v", "write", site="a"), "t1")
        in_thread(lambda: san.note("v", "write", site="b"), "t2")
        races = san.races()
        assert len(races) == 1
        assert races[0]["var"] == "v"
        assert {races[0]["site"], races[0]["prior_site"]} == {"a", "b"}

    def test_common_lock_is_silent(self):
        san = RaceSanitizer()
        lk = san.wrap_lock(threading.Lock(), "L")

        def guarded(site):
            with lk:
                san.note("v", "write", site=site)

        in_thread(lambda: guarded("a"), "t1")
        in_thread(lambda: guarded("b"), "t2")
        assert san.races() == []

    def test_lockset_is_intersected(self):
        # thread 1 holds {A, B}; thread 2 holds only B: C(v) = {B} → fine.
        # thread 3 holds only A: intersection empties → race.
        san = RaceSanitizer()
        a = san.wrap_lock(threading.Lock(), "A")
        b = san.wrap_lock(threading.Lock(), "B")

        def with_ab():
            with a, b:
                san.note("v", "write", site="ab")

        def with_b():
            with b:
                san.note("v", "write", site="b")

        def with_a():
            with a:
                san.note("v", "write", site="a")

        in_thread(with_ab, "t1")
        in_thread(with_b, "t2")
        assert san.races() == []
        in_thread(with_a, "t3")
        assert [r["var"] for r in san.races()] == ["v"]

    def test_shared_reads_do_not_race(self):
        # writes stay exclusive to the owner; other threads only read:
        # Shared (not Shared-Modified) state never reports
        san = RaceSanitizer()
        in_thread(lambda: san.note("v", "write", site="init"), "t1")
        in_thread(lambda: san.note("v", "read", site="peek"), "t2")
        in_thread(lambda: san.note("v", "read", site="peek"), "t3")
        assert san.races() == []

    def test_one_report_per_variable(self):
        san = RaceSanitizer()
        for i, name in enumerate(("t1", "t2", "t3", "t4")):
            in_thread(lambda i=i: san.note("v", "write", site=f"s{i}"), name)
        assert len(san.races()) == 1

    def test_epoch_resets_states_but_keeps_races(self):
        san = RaceSanitizer()
        in_thread(lambda: san.note("v", "write", site="a"), "t1")
        in_thread(lambda: san.note("v", "write", site="b"), "t2")
        assert len(san.races()) == 1
        san.epoch()
        # after the epoch the variable restarts Virgin: a fresh owner is
        # exclusive again and no second report appears
        in_thread(lambda: san.note("w", "write", site="c"), "t3")
        assert len(san.races()) == 1

    def test_handoff_transfers_ownership(self):
        # dependency-ordered transfer (the FUC finalize pattern): without
        # handoff this is a race; with it, the new owner is exclusive
        san = RaceSanitizer()
        in_thread(lambda: san.note("cblk", "write", site="producer"), "t1")
        san.handoff("cblk")
        in_thread(lambda: san.note("cblk", "write", site="consumer"), "t2")
        assert san.races() == []

    def test_check_raises_race_report_with_sites(self):
        san = RaceSanitizer()
        in_thread(lambda: san.note("v", "write", site="scheduler.py:1"), "t1")
        in_thread(lambda: san.note("v", "write", site="scheduler.py:2"), "t2")
        with pytest.raises(RaceReport) as exc:
            san.check()
        msg = str(exc.value)
        assert "scheduler.py:1" in msg and "scheduler.py:2" in msg
        assert exc.value.races[0]["var"] == "v"

    def test_tracked_lock_proxies_the_real_lock(self):
        san = RaceSanitizer()
        raw = threading.Lock()
        lk = san.wrap_lock(raw, "L")
        assert isinstance(lk, TrackedLock)
        with lk:
            assert raw.locked()
        assert not raw.locked()

    def test_condition_wait_drops_the_lock_from_the_lockset(self):
        san = RaceSanitizer()
        cond = san.wrap_condition(threading.Condition(), "C")
        seen = []

        def waiter():
            with cond:
                san.note("v", "write", site="pre-wait")
                cond.wait(timeout=5)
                san.note("v", "write", site="post-wait")
                seen.append("woke")

        def nudger():
            with cond:
                san.note("v", "write", site="nudger")
                cond.notify_all()

        t = threading.Thread(target=waiter, name="waiter")
        t.start()
        import time
        time.sleep(0.05)
        in_thread(nudger, "nudger")
        t.join()
        assert seen == ["woke"]
        # every access held C — even around the wait — so no race
        assert san.races() == []

    def test_event_log_is_bounded(self):
        san = RaceSanitizer(max_events=16)
        for i in range(100):
            san.note("v", "write", site=f"s{i}")
        assert len(san.events) == 16
        assert san.total_events == 100

    def test_dump_writes_summary_and_events(self, tmp_path):
        san = RaceSanitizer()
        in_thread(lambda: san.note("v", "write", site="a"), "t1")
        out = tmp_path / "tsan.jsonl"
        san.dump(out)
        lines = out.read_text().splitlines()
        head = json.loads(lines[0])["summary"]
        assert head["total_events"] == 1 and head["races"] == []
        assert json.loads(lines[1])["var"] == "v"


# ----------------------------------------------------------------------
# integration: the instrumented factorization
# ----------------------------------------------------------------------

A = laplacian_2d(20)


def _digest(**overrides):
    s = Solver(A, tiny_blr_config(tolerance=1e-8, **overrides))
    s.factorize()
    return factor_digest(s.factor), s


class TestInstrumentedFactorization:
    @pytest.mark.parametrize("scheduler", ("dynamic", "static"))
    @pytest.mark.parametrize("order", ("cuf", "ucf", "ufc", "fuc"))
    def test_clean_threaded_run_is_silent_and_bit_identical(
            self, scheduler, order):
        ref, _ = _digest(strategy="just-in-time", variant=order, threads=1)
        got, s = _digest(strategy="just-in-time", variant=order, threads=4,
                         scheduler=scheduler, sanitize=True)
        assert s.sanitizer is not None, "sanitizer should be armed"
        assert s.sanitizer.races() == []
        assert s.sanitizer.total_events > 0, "instrumentation never fired"
        assert got == ref, "sanitized factors must stay bit-identical"

    def test_seeded_race_is_caught_and_names_the_sites(self):
        fi = FaultInjector()
        fi.enable_race_counter()
        s = Solver(A, tiny_blr_config(strategy="just-in-time",
                                      tolerance=1e-8, threads=4,
                                      sanitize=True))
        with pytest.raises(RaceReport) as exc:
            s.factorize(faults=fi)
        msg = str(exc.value)
        assert "faults.racy_count" in msg
        assert "faults.py:on_factor" in msg
        assert "no common lock" in msg
        assert fi.racy_count > 0, "the racy counter should have been hit"

    def test_same_injector_without_race_counter_is_silent(self):
        s = Solver(A, tiny_blr_config(strategy="just-in-time",
                                      tolerance=1e-8, threads=4,
                                      sanitize=True))
        s.factorize(faults=FaultInjector())
        assert s.sanitizer is not None and s.sanitizer.races() == []

    def test_sequential_runs_are_never_instrumented(self):
        _, s = _digest(strategy="just-in-time", threads=1, sanitize=True)
        assert s.sanitizer is None

    def test_env_var_arms_the_sanitizer(self, monkeypatch):
        monkeypatch.setenv("REPRO_TSAN", "1")
        assert SolverConfig().sanitize_enabled()
        _, s = _digest(strategy="just-in-time", threads=4)
        assert s.sanitizer is not None

    def test_env_var_zero_means_off(self, monkeypatch):
        monkeypatch.setenv("REPRO_TSAN", "0")
        assert not SolverConfig().sanitize_enabled()

    def test_tsan_log_dump(self, monkeypatch, tmp_path):
        log = tmp_path / "events.jsonl"
        monkeypatch.setenv("REPRO_TSAN_LOG", str(log))
        _, s = _digest(strategy="just-in-time", threads=4, sanitize=True)
        head = json.loads(log.read_text().splitlines()[0])["summary"]
        assert head["races"] == []
        assert head["total_events"] == s.sanitizer.total_events
