"""Backend conformance suite.

Every registered :class:`repro.core.backend.KernelBackend` must pass the
same kernel-level golden checks — gemm / trsm / panel solves on dense and
low-rank blocks, across all four dtypes — plus the contracts the solver
relies on:

* **column stability** of the panel kernels: column ``j`` of a blocked
  result is bit-identical to the single-column result, whatever the
  panel width;
* **seed bit-compatibility** of the numpy backend: a float64
  factorization produces sha256-identical factors to the pre-backend
  solver (the four pinned digests below were captured from the seed).

A ``numba`` leg is parametrized explicitly so environments with numba
installed exercise the JIT backend and environments without it report a
skip (with reason) rather than silently shrinking coverage.
"""

from __future__ import annotations

import importlib.util

import numpy as np
import pytest

from repro.core.backend import available_backends, get_backend
from repro.core.solver import Solver
from repro.sparse.generators import laplacian_3d
from tests.conftest import tiny_blr_config
from tests.test_recovery import factor_digest

DTYPES = (np.float32, np.float64, np.complex64, np.complex128)

#: relative tolerance per dtype for value-level (not bitwise) checks
RTOL = {
    np.float32: 5e-5,
    np.float64: 1e-12,
    np.complex64: 5e-5,
    np.complex128: 1e-12,
}

#: sha256 of the float64 factors on laplacian_3d(6) under the seed code
#: (tiny_blr_config, tolerance 1e-8) — the numpy backend must reproduce
#: these bits exactly
SEED_DIGESTS = {
    ("just-in-time", "lu"):
        "f7d30439fcd13c2afdd19ba947a9521a7dff65bdef40c2b083f2aa270270b89a",
    ("minimal-memory", "lu"):
        "0ca4df7a8ea8cb789e8bf37cd1677547704bae8cc85777c32d7f5a50fdd9c258",
    ("dense", "lu"):
        "560f1a0d8bbf91cbcc47e97efecd295a66ad86b267b44f5a447992b2c3959e1f",
    ("just-in-time", "cholesky"):
        "f52daf4d8415a235ea28b374479b40572fb317283894d6a01deb447dbefb86ce",
}

#: every backend that should be exercised somewhere: registered ones run,
#: the optional numba leg skips with a reason when not importable
BACKENDS = sorted(set(available_backends()) | {"numba"})


def _backend_param(name):
    if name == "numba" and importlib.util.find_spec("numba") is None:
        return pytest.param(
            name, marks=pytest.mark.skip(
                reason="numba is not installed; JIT backend unregistered"))
    return pytest.param(name)


backend_names = pytest.mark.parametrize(
    "backend_name", [_backend_param(n) for n in BACKENDS])

dtypes = pytest.mark.parametrize("dtype", DTYPES,
                                 ids=lambda d: np.dtype(d).name)


def _rand(rng, shape, dtype):
    a = rng.standard_normal(shape)
    if np.dtype(dtype).kind == "c":
        a = a + 1j * rng.standard_normal(shape)
    return a.astype(dtype)


def _tri(rng, n, dtype, lower, unit):
    """Well-conditioned triangular matrix (unit or dominant diagonal)."""
    m = _rand(rng, (n, n), dtype)
    m = np.tril(m) if lower else np.triu(m)
    if unit:
        np.fill_diagonal(m, 1.0)
    else:
        np.fill_diagonal(m, np.diag(m) + np.array(4.0, dtype=dtype))
    return m


@pytest.fixture
def rng():
    return np.random.default_rng(20170529)  # IPDPS'17


# ----------------------------------------------------------------------
# kernel-level goldens, every backend x every dtype
# ----------------------------------------------------------------------

@backend_names
@dtypes
class TestKernelGoldens:
    def test_gemm(self, backend_name, dtype, rng):
        be = get_backend(backend_name)
        a = _rand(rng, (7, 5), dtype)
        b = _rand(rng, (5, 4), dtype)
        rtol = RTOL[dtype]
        np.testing.assert_allclose(be.gemm(a, b), a @ b, rtol=rtol)
        np.testing.assert_allclose(be.gemm(a, b.T, trans_b="T"),
                                   a @ b, rtol=rtol)
        np.testing.assert_allclose(be.gemm(a.T, b, trans_a="T"),
                                   a @ b, rtol=rtol)
        np.testing.assert_allclose(be.gemm(a.conj().T, b, trans_a="C"),
                                   a @ b, rtol=rtol)

    def test_syrk(self, backend_name, dtype, rng):
        be = get_backend(backend_name)
        a = _rand(rng, (6, 3), dtype)
        rtol = RTOL[dtype]
        np.testing.assert_allclose(be.syrk(a), a @ a.T, rtol=rtol)
        np.testing.assert_allclose(be.syrk(a, herk=True), a @ a.conj().T,
                                   rtol=rtol)

    @pytest.mark.parametrize("side", ("left", "right"))
    @pytest.mark.parametrize("lower", (True, False))
    @pytest.mark.parametrize("trans", ("N", "T", "C"))
    @pytest.mark.parametrize("unit", (True, False))
    def test_trsm(self, backend_name, dtype, rng, side, lower, trans, unit):
        be = get_backend(backend_name)
        n, k = 6, 3
        a = _tri(rng, n, dtype, lower, unit)
        op = {"N": a, "T": a.T, "C": a.conj().T}[trans]
        rtol = 200 * RTOL[dtype]
        if side == "left":
            b = _rand(rng, (n, k), dtype)
            x = be.trsm(a, b, side=side, lower=lower, trans=trans,
                        unit_diagonal=unit)
            np.testing.assert_allclose(op @ x, b, rtol=rtol, atol=rtol)
        else:
            b = _rand(rng, (k, n), dtype)
            x = be.trsm(a, b, side=side, lower=lower, trans=trans,
                        unit_diagonal=unit)
            np.testing.assert_allclose(x @ op, b, rtol=rtol, atol=rtol)

    @pytest.mark.parametrize("lower", (True, False))
    @pytest.mark.parametrize("trans", ("N", "T", "C"))
    @pytest.mark.parametrize("unit", (True, False))
    def test_panel_trsm(self, backend_name, dtype, rng, lower, trans, unit):
        be = get_backend(backend_name)
        n, k = 6, 4
        a = _tri(rng, n, dtype, lower, unit)
        b = _rand(rng, (n, k), dtype)
        op = {"N": a, "T": a.T, "C": a.conj().T}[trans]
        x = be.panel_trsm(a, b, lower=lower, trans=trans,
                          unit_diagonal=unit)
        rtol = 200 * RTOL[dtype]
        np.testing.assert_allclose(op @ x, b, rtol=rtol, atol=rtol)

    def test_panel_trsm_reads_only_requested_triangle(self, backend_name,
                                                      dtype, rng):
        """LAPACK-packed diagonal blocks carry L and U in one array; the
        panel solve must ignore the opposite triangle."""
        be = get_backend(backend_name)
        a = _tri(rng, 5, dtype, lower=True, unit=False)
        packed = a + np.triu(_rand(rng, (5, 5), dtype), 1)  # garbage above
        b = _rand(rng, (5, 2), dtype)
        x_clean = be.panel_trsm(a, b, lower=True)
        x_packed = be.panel_trsm(packed, b, lower=True)
        np.testing.assert_array_equal(x_clean, x_packed)

    def test_panel_gemm(self, backend_name, dtype, rng):
        be = get_backend(backend_name)
        a = _rand(rng, (6, 4), dtype)
        x = _rand(rng, (4, 3), dtype)
        np.testing.assert_allclose(be.panel_gemm(a, x), a @ x,
                                   rtol=RTOL[dtype], atol=RTOL[dtype])

    @pytest.mark.parametrize("mode", ("n", "t", "h"))
    def test_lr_apply(self, backend_name, dtype, rng, mode):
        be = get_backend(backend_name)
        u = _rand(rng, (6, 2), dtype)
        v = _rand(rng, (5, 2), dtype)
        x = _rand(rng, (5 if mode == "n" else 6, 3), dtype)
        block = u @ v.T
        ref = {"n": block, "t": block.T, "h": block.conj().T}[mode] @ x
        np.testing.assert_allclose(be.lr_apply(u, v, x, mode=mode), ref,
                                   rtol=10 * RTOL[dtype],
                                   atol=10 * RTOL[dtype])

    def test_ldlt_pivot(self, backend_name, dtype, rng):
        be = get_backend(backend_name)
        n = 8
        m = _rand(rng, (n, n), dtype)
        hermitian = np.dtype(dtype).kind == "c"
        a = m + (m.conj().T if hermitian else m.T)
        a[0, 0] = 0.0  # forces at least one interchange or 2x2 pivot
        packed, perm, d21, stats = be.ldlt_pivot(np.ascontiguousarray(a))
        assert sorted(perm.tolist()) == list(range(n))
        assert set(stats) >= {"swaps", "n2x2", "perturbed", "growth"}
        assert stats["swaps"] + stats["n2x2"] > 0
        assert stats["perturbed"] == 0
        lmat = np.tril(packed, -1) + np.eye(n, dtype=packed.dtype)
        d = np.diag(np.diag(packed)).astype(packed.dtype)
        for j in np.flatnonzero(d21):
            d[j + 1, j] = d21[j]
            d[j, j + 1] = np.conj(d21[j]) if hermitian else d21[j]
        rec = lmat @ d @ (lmat.conj().T if hermitian else lmat.T)
        ap = a[np.ix_(perm, perm)]
        tol = 200 * RTOL[dtype] * np.abs(a).max()
        np.testing.assert_allclose(rec, ap, rtol=0, atol=tol)

    @pytest.mark.parametrize("mode", ("n", "t", "h"))
    def test_lr_apply_rank_zero(self, backend_name, dtype, rng, mode):
        be = get_backend(backend_name)
        u = np.zeros((6, 0), dtype=dtype)
        v = np.zeros((5, 0), dtype=dtype)
        x = _rand(rng, (5 if mode == "n" else 6, 3), dtype)
        out = be.lr_apply(u, v, x, mode=mode)
        assert out.shape == ((6, 3) if mode == "n" else (5, 3))
        assert out.dtype == np.result_type(u, v, x)
        assert not out.any()


# ----------------------------------------------------------------------
# the column-stability contract (bitwise, every backend x every dtype)
# ----------------------------------------------------------------------

@backend_names
@dtypes
class TestColumnStability:
    """Panel kernels: column j of a blocked result == the single-column
    result, bit for bit, at every panel width."""

    def test_panel_trsm_width_invariant(self, backend_name, dtype, rng):
        be = get_backend(backend_name)
        n, k = 12, 7
        a = _tri(rng, n, dtype, lower=True, unit=False)
        b = _rand(rng, (n, k), dtype)
        full = be.panel_trsm(a, b, lower=True)
        for j in range(k):
            single = be.panel_trsm(a, b[:, j:j + 1], lower=True)
            np.testing.assert_array_equal(full[:, j:j + 1], single)

    def test_panel_gemm_width_invariant(self, backend_name, dtype, rng):
        be = get_backend(backend_name)
        a = _rand(rng, (9, 6), dtype)
        x = _rand(rng, (6, 5), dtype)
        full = be.panel_gemm(a, x)
        for j in range(5):
            single = be.panel_gemm(a, x[:, j:j + 1])
            np.testing.assert_array_equal(full[:, j:j + 1], single)

    def test_lr_apply_width_invariant(self, backend_name, dtype, rng):
        be = get_backend(backend_name)
        u = _rand(rng, (8, 3), dtype)
        v = _rand(rng, (6, 3), dtype)
        x = _rand(rng, (6, 4), dtype)
        full = be.lr_apply(u, v, x)
        for j in range(4):
            single = be.lr_apply(u, v, x[:, j:j + 1])
            np.testing.assert_array_equal(full[:, j:j + 1], single)


# ----------------------------------------------------------------------
# end-to-end: blocked solves per backend, and the seed digest pins
# ----------------------------------------------------------------------

@backend_names
class TestEndToEnd:
    @pytest.mark.parametrize("strategy",
                             ("dense", "just-in-time", "minimal-memory"))
    def test_blocked_solve_matches_columns(self, backend_name, strategy):
        rng = np.random.default_rng(7)
        a = laplacian_3d(5)
        s = Solver(a, tiny_blr_config(strategy=strategy, tolerance=1e-8,
                                      backend=backend_name))
        s.factorize()
        b = rng.standard_normal((a.n, 5))
        x = s.solve(b)
        for j in range(5):
            np.testing.assert_array_equal(
                x[:, j], s.solve(np.ascontiguousarray(b[:, j])))

    def test_backend_recorded_in_stats(self, backend_name):
        a = laplacian_3d(4)
        s = Solver(a, tiny_blr_config(backend=backend_name))
        s.factorize()
        assert s.stats.backend == backend_name
        calls = s.stats.backend_kernel_calls
        assert calls.get("getrf", 0) > 0
        s.solve(np.ones(a.n))
        assert calls.get("panel_trsm", 0) > 0


class TestSeedBitCompatibility:
    """The numpy backend reproduces the pre-backend float64 factors
    bit-for-bit (sha256 over every factor array)."""

    @pytest.mark.parametrize("strategy,factotype", sorted(SEED_DIGESTS))
    def test_factor_digest_pinned(self, strategy, factotype):
        a = laplacian_3d(6)
        s = Solver(a, tiny_blr_config(strategy=strategy, factotype=factotype,
                                      tolerance=1e-8, backend="numpy"))
        s.factorize()
        assert factor_digest(s.factor) == SEED_DIGESTS[(strategy, factotype)]
