"""Tests for the LDLᵗ factorization path (symmetric, possibly indefinite)."""

import numpy as np
import pytest

from repro.core.dense_kernels import ldlt_nopivot
from repro.core.solver import Solver
from repro.sparse.csc import CSCMatrix
from repro.sparse.generators import laplacian_3d, random_spd
from tests.conftest import tiny_blr_config


def indefinite_matrix(n=60, seed=2):
    """Symmetric indefinite but strongly nonsingular test matrix."""
    d = random_spd(n, 0.1, seed=seed).to_dense()
    d -= 1.5 * np.diag(d).mean() * np.eye(n)
    d = (d + d.T) / 2
    a = CSCMatrix.from_dense(d)
    eig = np.linalg.eigvalsh(d)
    assert eig.min() < 0 < eig.max()  # genuinely indefinite
    return a


class TestLdltKernel:
    def test_reconstruction(self, rng):
        b = rng.standard_normal((12, 12))
        a = (b + b.T) / 2 + 12 * np.eye(12)
        packed, nperturbed = ldlt_nopivot(a)
        assert nperturbed == 0
        l_mat = np.tril(packed, -1) + np.eye(12)
        d = np.diag(np.diag(packed))
        np.testing.assert_allclose(l_mat @ d @ l_mat.T, a, atol=1e-10)

    def test_indefinite_reconstruction(self, rng):
        b = rng.standard_normal((10, 10))
        a = (b + b.T) / 2 + np.diag(np.linspace(-5, 5, 10))
        a += 10 * np.eye(10) * np.sign(np.diag(a))  # dominant, mixed signs
        packed, _ = ldlt_nopivot(a)
        l_mat = np.tril(packed, -1) + np.eye(10)
        d = np.diag(np.diag(packed))
        np.testing.assert_allclose(l_mat @ d @ l_mat.T, a, atol=1e-9)

    def test_negative_pivots_preserved(self):
        a = np.diag([-2.0, 3.0, -4.0])
        packed, nperturbed = ldlt_nopivot(a)
        assert nperturbed == 0
        np.testing.assert_allclose(np.diag(packed), [-2, 3, -4])

    def test_static_pivot_keeps_sign(self):
        # second pivot is tiny *relative to the diagonal scale* -> boosted,
        # and the boost keeps its negative sign
        a = np.diag([1.0, -1e-30])
        packed, nperturbed = ldlt_nopivot(a, pivot_threshold=1e-8)
        assert nperturbed == 1
        assert packed[1, 1] == pytest.approx(-1e-8)
        assert np.isfinite(packed).all()

    def test_rejects_rectangular(self, rng):
        with pytest.raises(ValueError, match="square"):
            ldlt_nopivot(rng.standard_normal((3, 4)))


class TestLdltSolver:
    @pytest.mark.parametrize("strategy", ["dense", "just-in-time",
                                          "minimal-memory"])
    def test_spd_all_strategies(self, strategy, rng):
        a = laplacian_3d(6)
        s = Solver(a, tiny_blr_config(strategy=strategy, factotype="ldlt",
                                      tolerance=1e-8))
        s.factorize()
        b = rng.standard_normal(a.n)
        assert s.backward_error(s.solve(b), b) <= 1e-5

    def test_indefinite_system(self, rng):
        a = indefinite_matrix()
        s = Solver(a, tiny_blr_config(strategy="dense", factotype="ldlt"))
        s.factorize()
        b = rng.standard_normal(a.n)
        assert s.backward_error(s.solve(b), b) <= 1e-10

    def test_ldlt_matches_cholesky_on_spd(self, rng):
        a = laplacian_3d(5)
        b = rng.standard_normal(a.n)
        xs = {}
        for factotype in ("cholesky", "ldlt"):
            s = Solver(a, tiny_blr_config(strategy="dense",
                                          factotype=factotype))
            s.factorize()
            xs[factotype] = s.solve(b)
        np.testing.assert_allclose(xs["ldlt"], xs["cholesky"], atol=1e-9)

    def test_single_side_storage(self, rng):
        a = laplacian_3d(5)
        s_lu = Solver(a, tiny_blr_config(strategy="dense", factotype="lu"))
        s_ld = Solver(a, tiny_blr_config(strategy="dense", factotype="ldlt"))
        st_lu = s_lu.factorize()
        st_ld = s_ld.factorize()
        assert st_ld.factor_nbytes < st_lu.factor_nbytes

    def test_refinement_with_cg(self, rng):
        a = laplacian_3d(6)
        s = Solver(a, tiny_blr_config(strategy="minimal-memory",
                                      factotype="ldlt", tolerance=1e-6))
        s.factorize()
        b = rng.standard_normal(a.n)
        res = s.refine(b, tol=1e-12, maxiter=20)
        assert res.backward_error <= 1e-10

    def test_threaded_ldlt(self, rng):
        a = laplacian_3d(6)
        s = Solver(a, tiny_blr_config(strategy="dense", factotype="ldlt",
                                      threads=3))
        s.factorize()
        b = rng.standard_normal(a.n)
        assert s.backward_error(s.solve(b), b) <= 1e-10

    def test_rejects_nonsymmetric(self):
        from repro.sparse.generators import convection_diffusion_3d
        a = convection_diffusion_3d(4)
        with pytest.raises(ValueError, match="symmetric"):
            Solver(a, tiny_blr_config(factotype="ldlt"))
