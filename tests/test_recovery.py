"""Tests for the self-healing solve pipeline (repro.runtime.recovery).

Covers the three tentpole layers end to end: breakdown detection (NaN
sentinels, pivot budgets, compression failures), the escalation policy
engine (local task retries, per-block dense fallback, whole-solve
refactorization, refinement-driven escalation), and checkpoint/restart
(bit-identical resume, fingerprint/config/dtype rejection).  The chaos
acceptance test at the bottom is what the CI chaos job runs with
``REPRO_CHAOS_THREADS=4``.
"""

import ast
import hashlib
import os
from pathlib import Path

import numpy as np
import pytest

from repro.config import SolverConfig
from repro.core.refinement import classify_history
from repro.core.scheduler import SchedulerError
from repro.core.serialize import CheckpointWriter, load_checkpoint
from repro.core.solver import Solver
from repro.lowrank.block import LowRankBlock
from repro.runtime.faults import FaultError, FaultInjector
from repro.runtime.recovery import (
    STRATEGY_LADDER,
    NumericalBreakdown,
    RecoveryPolicy,
    RecoveryState,
    escalate_config,
    find_breakdown,
)
from repro.runtime.telemetry import Telemetry
from repro.sparse.csc import CSCMatrix
from repro.sparse.generators import laplacian_2d, laplacian_3d
from tests.conftest import tiny_blr_config


def factor_digest(fac):
    """sha256 over every numerical array of the factors (order-stable).

    Archive bytes are not comparable (zip timestamps), so bit-identity
    assertions hash the factor *contents*.
    """
    h = hashlib.sha256()

    def eat(arr):
        if arr is not None:
            h.update(np.ascontiguousarray(arr).tobytes())

    for nc in fac.cblks:
        eat(nc.diag)
        eat(nc.lpanel)
        eat(nc.upanel)
        for blocks in (nc.lblocks, nc.ublocks):
            for b in blocks or ():
                if isinstance(b, LowRankBlock):
                    eat(b.u)
                    eat(b.v)
                else:
                    eat(b)
    return h.hexdigest()


def singular_identityish(n=12, zero_at=5):
    """Identity-pattern SPD-ish matrix with one exactly-zero pivot.

    Static pivoting must perturb the zero diagonal entry, which a
    ``pivot_budget=0.0`` policy then flags as a breakdown.
    """
    colptr = np.arange(n + 1, dtype=np.int64)
    rowind = np.arange(n, dtype=np.int64)
    values = np.ones(n)
    values[zero_at] = 0.0
    return CSCMatrix(n, colptr, rowind, values)


class TestPolicyAndState:
    def test_policy_defaults_validate(self):
        p = RecoveryPolicy()
        assert p.max_retries == 3 and p.dense_fallback

    @pytest.mark.parametrize("bad", [
        dict(max_retries=-1),
        dict(tau_shrink=0.0),
        dict(tau_shrink=1.0),
        dict(tau_floor=0.0),
        dict(task_retries=-1),
        dict(retry_backoff=-0.5),
        dict(pivot_budget=-0.1),
        dict(refine_window=0),
        dict(refine_drop=1.0),
        dict(checkpoint_every=-1),
    ])
    def test_policy_rejects_bad_knobs(self, bad):
        with pytest.raises(ValueError):
            RecoveryPolicy(**bad)

    def test_config_coerces_dict(self):
        cfg = SolverConfig(recovery={"max_retries": 1})
        assert isinstance(cfg.recovery, RecoveryPolicy)
        assert cfg.recovery.max_retries == 1
        with pytest.raises(TypeError):
            SolverConfig(recovery="yes please")

    def test_state_records_and_counts(self):
        state = RecoveryState(RecoveryPolicy())
        state.record("task_retry", site="scheduler", cblk=3, attempt=1)
        state.record("task_retry", site="scheduler", cblk=4, attempt=1)
        state.record("breakdown", site="factor", cblk=4, cause="nan-input")
        assert state.counts() == {"task_retry": 2, "breakdown": 1}
        summ = state.summary()
        assert summ["counts"]["task_retry"] == 2
        assert summ["actions"][0]["cblk"] == 3

    def test_state_mirrors_telemetry(self):
        tele = Telemetry()
        state = RecoveryState(RecoveryPolicy(), telemetry=tele)
        state.record("dense_fallback", site="compress", cblk=1)
        snap = tele.snapshot()
        assert "recovery_dense_fallback" in snap["counters"]

    def test_backoff_is_seeded_and_bounded(self):
        a = RecoveryState(RecoveryPolicy(retry_backoff=0.01, seed=9))
        b = RecoveryState(RecoveryPolicy(retry_backoff=0.01, seed=9))
        seq_a = [a.backoff(i) for i in range(3)]
        assert seq_a == [b.backoff(i) for i in range(3)]
        assert all(0.005 * 2 ** i <= s <= 0.015 * 2 ** i
                   for i, s in enumerate(seq_a))
        assert RecoveryState(RecoveryPolicy()).backoff(5) == 0.0


class TestBreakdownPlumbing:
    def test_breakdown_message_is_structured(self):
        exc = NumericalBreakdown("nan-input", cblk=7, site="factor",
                                 detail="lpanel")
        assert "nan-input" in str(exc) and "column block 7" in str(exc)
        assert (exc.cause, exc.cblk, exc.site) == ("nan-input", 7, "factor")

    def test_find_breakdown_direct_and_chained(self):
        bd = NumericalBreakdown("pivot-budget", cblk=2)
        assert find_breakdown(bd) is bd
        try:
            try:
                raise bd
            except NumericalBreakdown as inner:
                raise RuntimeError("wrapped") from inner
        except RuntimeError as outer:
            assert find_breakdown(outer) is bd
        assert find_breakdown(ValueError("plain")) is None

    def test_find_breakdown_in_scheduler_aggregation(self):
        bd = NumericalBreakdown("nan-factor", cblk=5)
        agg = SchedulerError("3 workers died", errors=[ValueError("x"), bd])
        assert find_breakdown(agg) is bd

    def test_escalation_ladder_tightens_then_downgrades(self):
        policy = RecoveryPolicy(tau_shrink=0.1, tau_floor=1e-10)
        cfg = tiny_blr_config(strategy="minimal-memory", tolerance=1e-8)
        rung1 = escalate_config(cfg, policy)
        assert rung1.tolerance == pytest.approx(1e-9)
        assert rung1.strategy == "minimal-memory"
        rung2 = escalate_config(rung1, policy)
        assert rung2.tolerance == pytest.approx(1e-10)
        rung3 = escalate_config(rung2, policy)  # below floor: downgrade
        assert rung3.strategy == STRATEGY_LADDER["minimal-memory"]
        assert escalate_config(
            tiny_blr_config(strategy="dense"), policy) is None

    def test_escalation_respects_downgrade_switch(self):
        policy = RecoveryPolicy(tau_shrink=0.1, tau_floor=1.0,
                                strategy_downgrade=False)
        cfg = tiny_blr_config(strategy="just-in-time", tolerance=1e-8)
        assert escalate_config(cfg, policy) is None


class TestSentinels:
    def test_nan_input_breaks_down_structured(self):
        """With recovery on and no rungs left, a poisoned panel surfaces as
        a structured breakdown instead of silently NaN-ing the factors."""
        a = laplacian_3d(5)
        cfg = tiny_blr_config(strategy="dense",
                              recovery=RecoveryPolicy(max_retries=0))
        s = Solver(a, cfg)
        s.analyze()
        inj = FaultInjector()
        inj.nan_in_panel(0)
        with pytest.raises(NumericalBreakdown) as ei:
            s.factorize(faults=inj)
        assert ei.value.cause == "nan-input"
        assert ei.value.cblk == 0
        assert s.last_recovery["counts"]["breakdown"] == 1

    def test_pivot_budget_breakdown(self):
        a = singular_identityish()
        cfg = tiny_blr_config(
            strategy="dense",
            recovery=RecoveryPolicy(pivot_budget=0.0, max_retries=3))
        s = Solver(a, cfg)
        # dense strategy has no escalation rungs: the breakdown propagates
        with pytest.raises(NumericalBreakdown) as ei:
            s.factorize()
        assert ei.value.cause == "pivot-budget"

    def test_pivot_budget_none_tolerates_perturbation(self):
        a = singular_identityish()
        cfg = tiny_blr_config(strategy="dense", recovery=RecoveryPolicy())
        s = Solver(a, cfg)
        s.factorize()
        assert s.factor.nperturbed >= 1

    def test_default_config_unchanged(self):
        """recovery=None keeps the historical silent-poisoning behaviour."""
        a = laplacian_3d(5)
        s = Solver(a, tiny_blr_config(strategy="dense"))
        s.analyze()
        inj = FaultInjector()
        inj.nan_in_panel(0)
        s.factorize(faults=inj)  # must not raise
        assert s.last_recovery is None


class TestEscalationEndToEnd:
    def test_nan_panel_heals_via_refactorization(self):
        a = laplacian_3d(6)
        cfg = tiny_blr_config(strategy="just-in-time", tolerance=1e-8,
                              recovery=RecoveryPolicy())
        s = Solver(a, cfg)
        s.analyze()
        inj = FaultInjector()
        inj.nan_in_panel(0, transient=True)
        s.factorize(faults=inj)
        counts = s.last_recovery["counts"]
        assert counts["breakdown"] >= 1 and counts["refactorize"] >= 1
        b = np.ones(a.n)
        assert s.backward_error(s.solve(b), b) <= 1e-6

    def test_task_retry_heals_transient_fault(self):
        a = laplacian_3d(6)
        cfg = tiny_blr_config(strategy="just-in-time", tolerance=1e-8,
                              recovery=RecoveryPolicy())
        baseline = Solver(a, cfg)
        baseline.factorize()
        s = Solver(a, cfg)
        s.analyze()
        inj = FaultInjector()
        inj.fail_factor(s.symbolic.ncblk // 2, transient=True)
        s.factorize(faults=inj)
        assert s.last_recovery["counts"] == {"task_retry": 1}
        # snapshot/restore retry is exact: same factors as the clean run
        assert factor_digest(s.factor) == factor_digest(baseline.factor)

    def test_task_retries_exhausted_still_raises(self):
        a = laplacian_2d(6)
        cfg = tiny_blr_config(
            strategy="dense",
            recovery=RecoveryPolicy(task_retries=2, max_retries=0))
        s = Solver(a, cfg)
        s.analyze()
        inj = FaultInjector()
        inj.fail_factor(0)  # permanent: every retry refaults
        with pytest.raises(FaultError):
            s.factorize(faults=inj)
        assert s.last_recovery["counts"]["task_retry"] == 2

    def test_compress_failure_falls_back_to_dense(self):
        a = laplacian_3d(6)
        cfg = tiny_blr_config(strategy="just-in-time", tolerance=1e-8,
                              recovery=RecoveryPolicy())
        s = Solver(a, cfg)
        s.analyze()
        inj = FaultInjector()
        for k in range(s.symbolic.ncblk):
            inj.fail_compress(k)
        s.factorize(faults=inj)
        counts = s.last_recovery["counts"]
        assert counts.get("dense_fallback", 0) >= 1
        assert "refactorize" not in counts  # healed per block, not per run
        b = np.ones(a.n)
        assert s.backward_error(s.solve(b), b) <= 1e-10  # fully dense now

    def test_compress_failure_without_fallback_raises(self):
        a = laplacian_3d(6)
        cfg = tiny_blr_config(
            strategy="just-in-time", tolerance=1e-8,
            recovery=RecoveryPolicy(dense_fallback=False, max_retries=0,
                                    task_retries=0))
        s = Solver(a, cfg)
        s.analyze()
        inj = FaultInjector()
        for k in range(s.symbolic.ncblk):
            inj.fail_compress(k)
        with pytest.raises(FaultError):
            s.factorize(faults=inj)

    def test_trisolve_retry(self):
        a = laplacian_3d(5)
        cfg = tiny_blr_config(strategy="dense", recovery=RecoveryPolicy())
        s = Solver(a, cfg)
        s.factorize()
        inj = FaultInjector()
        inj.fail_trisolve(transient=True)
        s.factor.faults = inj
        b = np.ones(a.n)
        x = s.solve(b)
        assert s.backward_error(x, b) <= 1e-10
        assert ("trisolve", -1, None, "raise") in inj.fired


class TestRefinementEscalation:
    def test_classify_history_verdicts(self):
        assert classify_history([]) == (False, False)
        assert classify_history([1.0, 0.5, float("nan")]) == (False, True)
        assert classify_history([1e-3, 1e-2, 5e-2],
                                growth=10.0) == (False, True)
        # 5 entries, window 4: last did not drop 10x below history[-5]
        assert classify_history([1.0, 0.9, 0.8, 0.7, 0.6],
                                window=4) == (True, False)
        assert classify_history([1.0, 0.1, 0.01, 1e-3, 1e-4],
                                window=4) == (False, False)

    def test_stalled_refinement_triggers_refactorization(self):
        a = laplacian_3d(6)
        policy = RecoveryPolicy(refine_window=2, refine_drop=50.0,
                                tau_shrink=1e-3, max_retries=3)
        # τ=0.9 plain iterative refinement contracts ~0.4x per iteration:
        # nowhere near the demanded 50x-per-2-iterations, so it stalls
        cfg = tiny_blr_config(strategy="just-in-time", tolerance=0.9,
                              recovery=policy)
        s = Solver(a, cfg)
        s.factorize()
        b = np.ones(a.n)
        res = s.refine(b, tol=1e-12, maxiter=20, method="ir")
        assert res.converged
        assert s.last_recovery["counts"]["refine_escalation"] >= 1
        assert s.last_recovery["final_tolerance"] < 0.9

    def test_refinement_marks_classification_without_policy(self):
        """The classification fields are filled even with recovery off."""
        a = laplacian_3d(5)
        s = Solver(a, tiny_blr_config(strategy="just-in-time",
                                      tolerance=0.9))
        s.factorize()
        b = np.ones(a.n)
        res = s.refine(b, tol=1e-14, maxiter=8, method="ir")
        assert not res.converged  # 0.4x/iter cannot reach 1e-14 in 8 iters
        assert (res.stagnated, res.diverged) == classify_history(res.history)


class TestCheckpointRestart:
    def _cfg(self, **kw):
        base = dict(strategy="just-in-time", tolerance=1e-8)
        base.update(kw)
        return tiny_blr_config(**base)

    def test_interrupt_and_resume_bit_identical(self, tmp_path):
        a = laplacian_3d(6)
        clean = Solver(a, self._cfg())
        clean.factorize()
        want = factor_digest(clean.factor)

        ckpt = tmp_path / "partial.ckpt"
        s = Solver(a, self._cfg())
        s.analyze()
        inj = FaultInjector()
        inj.fail_factor(s.symbolic.ncblk // 2)
        with pytest.raises(FaultError):
            s.factorize(faults=inj, checkpoint=ckpt)
        assert ckpt.exists()
        header, _ = load_checkpoint(ckpt)
        assert 0 < sum(header["completed"]) < s.symbolic.ncblk

        resumed = Solver(a, self._cfg())
        resumed.resume_from(ckpt)
        assert factor_digest(resumed.factor) == want
        b = np.ones(a.n)
        assert resumed.backward_error(resumed.solve(b), b) <= 1e-6

    def test_resume_rejects_different_matrix(self, tmp_path):
        a = laplacian_3d(5)
        ckpt = tmp_path / "m.ckpt"
        s = Solver(a, self._cfg())
        s.analyze()
        inj = FaultInjector()
        inj.fail_factor(s.symbolic.ncblk // 2)
        with pytest.raises(FaultError):
            s.factorize(faults=inj, checkpoint=ckpt)
        scaled = CSCMatrix(a.n, a.colptr, a.rowind, 2.0 * a.values)
        other = Solver(scaled, self._cfg())
        with pytest.raises(ValueError, match="fingerprint"):
            other.resume_from(ckpt)

    def test_resume_rejects_different_config(self, tmp_path):
        a = laplacian_3d(5)
        ckpt = tmp_path / "c.ckpt"
        s = Solver(a, self._cfg())
        s.analyze()
        inj = FaultInjector()
        inj.fail_factor(s.symbolic.ncblk // 2)
        with pytest.raises(FaultError):
            s.factorize(faults=inj, checkpoint=ckpt)
        other = Solver(a, self._cfg(tolerance=1e-4))
        with pytest.raises(ValueError, match="configuration"):
            other.resume_from(ckpt)

    def test_resume_rejects_different_dtype(self, tmp_path):
        a = laplacian_3d(5)
        ckpt = tmp_path / "d.ckpt"
        s = Solver(a, self._cfg())
        s.analyze()
        inj = FaultInjector()
        inj.fail_factor(s.symbolic.ncblk // 2)
        with pytest.raises(FaultError):
            s.factorize(faults=inj, checkpoint=ckpt)
        complex_a = CSCMatrix(a.n, a.colptr, a.rowind,
                              a.values.astype(np.complex128))
        other = Solver(complex_a, self._cfg())
        with pytest.raises(ValueError, match="dtype"):
            other.resume_from(ckpt)

    def test_checkpoint_cadence(self, tmp_path):
        a = laplacian_2d(6)
        ckpt = tmp_path / "cad.ckpt"
        policy = RecoveryPolicy(checkpoint_every=1)
        s = Solver(a, self._cfg(recovery=policy))
        s.factorize(checkpoint=ckpt)
        counts = s.last_recovery["counts"]
        assert counts["checkpoint"] == s.symbolic.ncblk
        # the final checkpoint is complete: resume restores everything
        resumed = Solver(a, self._cfg(recovery=policy))
        resumed.resume_from(ckpt)
        assert factor_digest(resumed.factor) == factor_digest(s.factor)

    def test_checkpoint_write_failure_is_recorded_not_fatal(self, tmp_path):
        a = laplacian_2d(6)
        ckpt = tmp_path / "wf.ckpt"
        policy = RecoveryPolicy(checkpoint_every=1)
        s = Solver(a, self._cfg(recovery=policy))
        s.analyze()
        inj = FaultInjector()
        inj.fail_serialize(transient=True)
        s.factorize(faults=inj, checkpoint=ckpt)
        counts = s.last_recovery["counts"]
        assert counts["checkpoint_failed"] == 1
        assert counts["checkpoint"] == s.symbolic.ncblk - 1

    def test_checkpoint_requires_sequential(self):
        a = laplacian_2d(5)
        s = Solver(a, self._cfg(threads=2))
        with pytest.raises(ValueError, match="threads=1"):
            s.factorize(checkpoint="nope.ckpt")

    def test_writer_on_fault_respects_policy_switch(self, tmp_path):
        a = laplacian_2d(5)
        ckpt = tmp_path / "off.ckpt"
        policy = RecoveryPolicy(checkpoint_on_fault=False)
        s = Solver(a, self._cfg(recovery=policy,
                                # a permanent fault must surface unhealed
                                ))
        s.analyze()
        writer = CheckpointWriter(ckpt, np.arange(a.n), "fp",
                                  every=0, write_on_fault=False)
        s2 = Solver(a, self._cfg())
        s2.factorize()
        writer.on_fault(s2.factor)
        assert not ckpt.exists() and writer.writes == 0


class TestChaosAcceptance:
    """ISSUE acceptance: transient faults at three distinct sites, the
    recovery-enabled solve completes with a τ-consistent backward error
    and nonzero recovery counters in the RunReport."""

    @pytest.mark.parametrize("scheduler", ["dynamic", "static"])
    def test_three_site_chaos_completes(self, scheduler):
        nthreads = int(os.environ.get("REPRO_CHAOS_THREADS", "2"))
        a = laplacian_3d(6)
        tele = Telemetry()
        cfg = tiny_blr_config(strategy="just-in-time", tolerance=1e-8,
                              threads=nthreads, scheduler=scheduler,
                              telemetry=tele,
                              recovery=RecoveryPolicy())
        s = Solver(a, cfg)
        s.analyze()
        ncblk = s.symbolic.ncblk
        inj = FaultInjector(seed=42)
        inj.fail_factor(inj.pick_block(ncblk), transient=True)
        inj.nan_in_panel(inj.pick_block(ncblk), transient=True)
        inj.fail_compress(inj.pick_block(ncblk), transient=True)
        s.factorize(faults=inj)

        sites = {f[0] for f in inj.fired}
        assert sites == {"factor", "compress"}  # nan fires at site 'factor'
        counts = s.last_recovery["counts"]
        assert sum(counts.values()) >= 2
        b = np.ones(a.n)
        err = s.backward_error(s.solve(b), b)
        assert err <= 1e-5  # τ-consistent (τ=1e-8 with BLR slack)

        report = s.run_report(workload="chaos", backward_error=err)
        recovery_counters = [name for name in report["telemetry"]["counters"]
                             if name.startswith("recovery_")]
        assert recovery_counters, "recovery counters missing from RunReport"
        assert report["recovery"]["counts"] == counts


RECOVERY_LAYER_FILES = [
    "src/repro/runtime/recovery.py",
    "src/repro/runtime/faults.py",
    "src/repro/core/scheduler.py",
    "src/repro/core/factor.py",
    "src/repro/core/factorization.py",
    "src/repro/core/serialize.py",
    "src/repro/core/solver.py",
    "src/repro/core/refinement.py",
    "src/repro/core/trisolve.py",
    "src/repro/lowrank/kernels.py",
]

#: method names that count as "recording" an exception instead of
#: swallowing it (telemetry, recovery log, scheduler error aggregation)
RECORDING_CALLS = {"record", "record_recovery", "emit", "inc", "append",
                   "extend", "put", "put_nowait", "add", "warn"}


def _handler_reraises_or_records(handler: ast.ExceptHandler) -> bool:
    for node in ast.walk(handler):
        if isinstance(node, ast.Raise):
            return True
        if (isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in RECORDING_CALLS):
            return True
    return False


class TestNoSwallowedExceptions:
    """Satellite (f): every except handler in the recovery layer either
    re-raises or records what happened — silent healing is forbidden."""

    @pytest.mark.parametrize("rel", RECOVERY_LAYER_FILES)
    def test_every_handler_reraises_or_records(self, rel):
        path = Path(__file__).resolve().parent.parent / rel
        tree = ast.parse(path.read_text(encoding="utf-8"))
        offenders = [
            f"{rel}:{node.lineno}"
            for node in ast.walk(tree)
            if isinstance(node, ast.ExceptHandler)
            and not _handler_reraises_or_records(node)
        ]
        assert not offenders, (
            "except handlers that neither re-raise nor record: "
            + ", ".join(offenders))
