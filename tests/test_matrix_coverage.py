"""Systematic combination coverage: strategy × kernel × factotype.

Every supported combination must factorize and solve a representative
problem at its expected accuracy.  This is the compatibility matrix a
downstream user implicitly relies on.
"""

import numpy as np
import pytest

from repro.config import FACTOTYPES, KERNELS, STRATEGIES
from repro.core.solver import Solver
from repro.sparse.generators import convection_diffusion_3d, laplacian_3d
from tests.conftest import tiny_blr_config

TOL = 1e-6


@pytest.fixture(scope="module")
def spd_problem():
    a = laplacian_3d(6)
    rng = np.random.default_rng(11)
    return a, rng.standard_normal(a.n)


@pytest.fixture(scope="module")
def general_problem():
    a = convection_diffusion_3d(5, peclet=0.6)
    rng = np.random.default_rng(12)
    return a, rng.standard_normal(a.n)


@pytest.mark.parametrize("strategy", STRATEGIES)
@pytest.mark.parametrize("kernel", KERNELS)
@pytest.mark.parametrize("factotype", FACTOTYPES)
def test_combination_solves_spd(strategy, kernel, factotype, spd_problem):
    a, b = spd_problem
    cfg = tiny_blr_config(strategy=strategy, kernel=kernel,
                          factotype=factotype, tolerance=TOL)
    s = Solver(a, cfg)
    s.factorize()
    err = s.backward_error(s.solve(b), b)
    budget = 1e-10 if strategy == "dense" else TOL * 100
    assert err <= budget, (strategy, kernel, factotype, err)


@pytest.mark.parametrize("strategy", STRATEGIES)
@pytest.mark.parametrize("kernel", KERNELS)
def test_combination_solves_general(strategy, kernel, general_problem):
    a, b = general_problem
    cfg = tiny_blr_config(strategy=strategy, kernel=kernel,
                          factotype="lu", tolerance=TOL)
    s = Solver(a, cfg)
    s.factorize()
    err = s.backward_error(s.solve(b), b)
    budget = 1e-10 if strategy == "dense" else TOL * 100
    assert err <= budget, (strategy, kernel, err)


@pytest.mark.parametrize("strategy", ["dense", "just-in-time"])
@pytest.mark.parametrize("scheduler", ["dynamic", "static"])
def test_threaded_schedulers_all_strategies(strategy, scheduler,
                                            spd_problem):
    a, b = spd_problem
    cfg = tiny_blr_config(strategy=strategy, tolerance=TOL, threads=3,
                          scheduler=scheduler)
    s = Solver(a, cfg)
    s.factorize()
    err = s.backward_error(s.solve(b), b)
    assert err <= (1e-10 if strategy == "dense" else TOL * 100)


@pytest.mark.parametrize("strategy", ["just-in-time", "minimal-memory"])
def test_accumulation_with_every_kernel(strategy, spd_problem):
    a, b = spd_problem
    for kernel in KERNELS:
        cfg = tiny_blr_config(strategy=strategy, kernel=kernel,
                              tolerance=TOL, accumulate_updates=True)
        s = Solver(a, cfg)
        s.factorize()
        assert s.backward_error(s.solve(b), b) <= TOL * 100


def test_transpose_solve_consistency(general_problem):
    """solve(trans=True) of A equals solve() of Aᵗ."""
    a, b = general_problem
    s = Solver(a, tiny_blr_config(strategy="dense"))
    s.factorize()
    x_trans = s.solve(b, trans=True)
    s_t = Solver(a.transpose(), tiny_blr_config(strategy="dense"))
    s_t.factorize()
    x_ref = s_t.solve(b)
    np.testing.assert_allclose(x_trans, x_ref, atol=1e-9)
