"""Tests for factorization save/load."""

import numpy as np
import pytest

from repro.core.serialize import load_factor, save_factor
from repro.core.solver import Solver
from repro.sparse.generators import (
    convection_diffusion_3d,
    laplacian_3d,
)
from tests.conftest import tiny_blr_config


def roundtrip(a, cfg, tmp_path, rng):
    s = Solver(a, cfg)
    s.factorize()
    b = rng.standard_normal(a.n)
    x1 = s.solve(b)
    path = tmp_path / "factor.rpz"
    s.save_factor(path)
    s2 = Solver.load_factor(a, path)
    x2 = s2.solve(b)
    return s, s2, x1, x2, path


class TestRoundtrip:
    @pytest.mark.parametrize("strategy", ["dense", "just-in-time",
                                          "minimal-memory"])
    def test_solutions_bitwise_identical(self, strategy, tmp_path, rng):
        a = laplacian_3d(6)
        cfg = tiny_blr_config(strategy=strategy, tolerance=1e-6)
        _, _, x1, x2, _ = roundtrip(a, cfg, tmp_path, rng)
        np.testing.assert_array_equal(x1, x2)

    def test_nonsymmetric_lu(self, tmp_path, rng):
        a = convection_diffusion_3d(5)
        cfg = tiny_blr_config(strategy="minimal-memory", tolerance=1e-8)
        _, _, x1, x2, _ = roundtrip(a, cfg, tmp_path, rng)
        np.testing.assert_array_equal(x1, x2)

    def test_cholesky(self, tmp_path, rng):
        a = laplacian_3d(5)
        cfg = tiny_blr_config(strategy="dense", factotype="cholesky")
        _, _, x1, x2, _ = roundtrip(a, cfg, tmp_path, rng)
        np.testing.assert_array_equal(x1, x2)

    def test_config_and_analysis_restored(self, tmp_path, rng):
        a = laplacian_3d(5)
        cfg = tiny_blr_config(strategy="minimal-memory", tolerance=1e-4)
        s, s2, _, _, _ = roundtrip(a, cfg, tmp_path, rng)
        assert s2.config == s.config
        assert s2.symbolic.ncblk == s.symbolic.ncblk
        np.testing.assert_array_equal(s2.perm, s.perm)

    def test_loaded_solver_refines(self, tmp_path, rng):
        a = laplacian_3d(6)
        cfg = tiny_blr_config(strategy="minimal-memory", tolerance=1e-4)
        _, s2, _, _, _ = roundtrip(a, cfg, tmp_path, rng)
        b = rng.standard_normal(a.n)
        res = s2.refine(b, tol=1e-12, maxiter=20)
        assert res.backward_error <= 1e-10


class TestArchiveProperties:
    def test_blr_stores_fewer_factor_bytes(self, tmp_path, rng):
        """The archived *payload* follows the compressed factor size.

        (The on-disk file also gets deflate on top, which happens to
        squeeze smooth dense factors well — so the honest comparison is
        the logical payload, not the zip size.)"""
        a = laplacian_3d(8)
        payloads = {}
        for strategy in ("dense", "minimal-memory"):
            cfg = tiny_blr_config(strategy=strategy, tolerance=1e-2)
            s = Solver(a, cfg)
            stats = s.factorize()
            path = tmp_path / f"{strategy}.rpz"
            s.save_factor(path)
            assert path.exists()
            payloads[strategy] = stats.factor_nbytes
        assert payloads["minimal-memory"] < payloads["dense"]

    def test_unfactored_save_rejected(self, tmp_path):
        a = laplacian_3d(4)
        s = Solver(a, tiny_blr_config())
        s.analyze()
        from repro.core.factor import NumericFactor
        fac = NumericFactor(s.symbolic, s.config)
        with pytest.raises(ValueError, match="unfactored"):
            save_factor(fac, s.perm, tmp_path / "x.rpz")

    def test_dimension_mismatch_rejected(self, tmp_path, rng):
        a = laplacian_3d(5)
        cfg = tiny_blr_config(strategy="dense")
        s = Solver(a, cfg)
        s.factorize()
        path = tmp_path / "f.rpz"
        s.save_factor(path)
        with pytest.raises(ValueError, match="dimension"):
            Solver.load_factor(laplacian_3d(4), path)

    def test_bad_version_rejected(self, tmp_path, rng):
        import json
        import zipfile

        a = laplacian_3d(4)
        s = Solver(a, tiny_blr_config(strategy="dense"))
        s.factorize()
        path = tmp_path / "f.rpz"
        s.save_factor(path)
        # tamper with the version
        with zipfile.ZipFile(path) as zf:
            header = json.loads(zf.read("header.json"))
            arrays = zf.read("arrays.npz")
        header["format_version"] = 999
        with zipfile.ZipFile(path, "w") as zf:
            zf.writestr("header.json", json.dumps(header))
            zf.writestr("arrays.npz", arrays)
        with pytest.raises(ValueError, match="version"):
            load_factor(path)
