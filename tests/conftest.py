"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import SolverConfig
from repro.sparse.csc import CSCMatrix
from repro.sparse.generators import (
    convection_diffusion_3d,
    elasticity_3d,
    heterogeneous_poisson_3d,
    laplacian_2d,
    laplacian_3d,
    random_spd,
)


@pytest.fixture
def rng():
    return np.random.default_rng(1234)


#: a solver configuration with thresholds small enough that compression
#: genuinely happens on the tiny matrices used in tests
def tiny_blr_config(**overrides) -> SolverConfig:
    base = dict(
        cmin=8,
        frat=0.08,
        split_size=16,
        split_min=8,
        compress_min_width=8,
        compress_min_height=3,
        rank_ratio=0.9,
    )
    base.update(overrides)
    return SolverConfig(**base)


@pytest.fixture
def blr_config():
    return tiny_blr_config


def reference_lu_nopivot(a: np.ndarray):
    """Dense LU without pivoting, used as ground truth in several tests."""
    n = a.shape[0]
    u = np.array(a, dtype=np.float64, copy=True)
    l_mat = np.eye(n)
    for k in range(n):
        l_mat[k + 1:, k] = u[k + 1:, k] / u[k, k]
        u[k + 1:, k:] -= np.outer(l_mat[k + 1:, k], u[k, k:])
    return l_mat, np.triu(u)


def random_lowrank(rng, m: int, n: int, r: int, decay: float = 0.5) -> np.ndarray:
    """Dense matrix with exactly controlled singular-value decay."""
    u = np.linalg.qr(rng.standard_normal((m, min(m, r))))[0]
    v = np.linalg.qr(rng.standard_normal((n, min(n, r))))[0]
    s = decay ** np.arange(min(m, n, r))
    return (u * s) @ v.T


SMALL_MATRICES = {
    "lap2d_6": lambda: laplacian_2d(6),
    "lap3d_6": lambda: laplacian_3d(6),
    "conv3d_6": lambda: convection_diffusion_3d(6),
    "elas_4": lambda: elasticity_3d(4),
    "hetero_6": lambda: heterogeneous_poisson_3d(6),
    "random_spd_60": lambda: random_spd(60, density=0.08, seed=3),
}


@pytest.fixture(params=sorted(SMALL_MATRICES))
def small_matrix(request) -> CSCMatrix:
    return SMALL_MATRICES[request.param]()
