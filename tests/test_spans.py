"""Tests for the causal span profiler (repro.runtime.spans) and its
analysis pipeline (repro.analysis.profile).

The heart of the suite is the acceptance criterion of the observability
PR: a traced 4-thread factorization and a traced sequential one must
produce *the same* causal span tree — edge for edge, attribute for
attribute, timestamps aside — and attaching the profiler must not change
a single bit of the computed factors.
"""

import hashlib
import json
import threading
import time

import numpy as np
import pytest

from repro.analysis.profile import (
    export_chrome_trace,
    export_speedscope,
    phase_rollup,
    render_attribution,
    report_attribution,
    summarize_attribution,
)
from repro.core.solver import Solver
from repro.runtime.spans import (
    LINK_CHILD,
    LINK_FOLLOWS,
    SpanProfiler,
    canonical_tree,
)
from repro.sparse.generators import laplacian_2d, laplacian_3d
from tests.conftest import tiny_blr_config

#: engine name -> config overrides producing that engine through Solver
ENGINES = {
    "sequential": dict(threads=1),
    "threaded-dynamic": dict(threads=4, scheduler="dynamic"),
    "threaded-static": dict(threads=4, scheduler="static"),
}


def profiled_solver(a, **overrides):
    prof = SpanProfiler()
    s = Solver(a, tiny_blr_config(profiler=prof, **overrides))
    s.factorize()
    return s, prof


def factor_digest(solver):
    h = hashlib.sha256()
    for nc in solver.factor.cblks:
        h.update(np.ascontiguousarray(nc.diag).tobytes())
        for i in range(len(nc.sym.off_blocks())):
            blk = nc.lblock(i)
            if hasattr(blk, "u"):
                h.update(np.ascontiguousarray(blk.u).tobytes())
                h.update(np.ascontiguousarray(blk.v).tobytes())
            else:
                h.update(np.ascontiguousarray(blk).tobytes())
    return h.hexdigest()


class TestProfilerUnit:
    def test_nesting_via_context_stack(self):
        prof = SpanProfiler()
        outer = prof.start("outer")
        inner = prof.start("inner")
        assert prof.current() == inner
        prof.end(inner)
        assert prof.current() == outer
        prof.end(outer)
        spans = {s.name: s for s in prof.events()}
        assert spans["outer"].parent_id == prof.root_id
        assert spans["inner"].parent_id == outer
        assert spans["inner"].link == LINK_CHILD

    def test_explicit_parent_and_follows_link(self):
        prof = SpanProfiler()
        a = prof.start("a")
        prof.end(a)
        b = prof.start("b", parent=a, link=LINK_FOLLOWS)
        prof.end(b)
        spans = {s.name: s for s in prof.events()}
        assert spans["b"].parent_id == a
        assert spans["b"].link == LINK_FOLLOWS

    def test_end_none_is_noop(self):
        prof = SpanProfiler()
        prof.end(None)  # must not raise

    def test_end_merges_late_attrs(self):
        prof = SpanProfiler()
        sid = prof.start("phase", n=3)
        prof.end(sid, ncblk=7)
        span = next(s for s in prof.events() if s.span_id == sid)
        assert span.attrs == {"n": 3, "ncblk": 7}

    def test_span_context_manager_closes_on_error(self):
        prof = SpanProfiler()
        with pytest.raises(RuntimeError):
            with prof.span("work"):
                raise RuntimeError("boom")
        prof.finish()
        assert prof.check_invariants() == []

    def test_ids_are_unique_across_threads(self):
        prof = SpanProfiler()
        ids, errs = [], []
        gate = threading.Barrier(4)

        def worker():
            try:
                gate.wait()  # all four threads alive at once
                for _ in range(50):
                    sid = prof.start("w")
                    ids.append(sid)
                    prof.end(sid)
            except Exception as exc:  # pragma: no cover - diagnostic
                errs.append(exc)

        threads = [threading.Thread(target=worker) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errs
        assert len(ids) == len(set(ids)) == 200
        assert len({s.thread for s in prof.events() if s.name == "w"}) == 4

    def test_invariants_catch_unended_span(self):
        prof = SpanProfiler()
        prof.start("leak")
        problems = prof.check_invariants()
        assert any("never ended" in p for p in problems)

    def test_json_round_trip(self):
        prof = SpanProfiler()
        prof.meta.update(engine="sequential", threads=1)
        with prof.span("phase", n=5):
            with prof.span("kernel", cblk=0):
                pass
        prof.finish()
        doc = prof.to_json()
        assert doc["version"] == 1
        clone = SpanProfiler.from_json(doc)
        assert clone.meta["engine"] == "sequential"
        assert canonical_tree(clone.events()) == canonical_tree(prof.events())
        assert clone.check_invariants() == []

    def test_from_json_rejects_unknown_version(self):
        with pytest.raises(ValueError, match="version"):
            SpanProfiler.from_json({"version": 99, "spans": []})

    def test_to_json_writes_file(self, tmp_path):
        prof = SpanProfiler()
        prof.finish()
        path = tmp_path / "spans.json"
        prof.to_json(path)
        assert json.loads(path.read_text())["version"] == 1

    def test_task_start_parents_to_canonical_releaser(self):
        prof = SpanProfiler()
        phase = prof.start("factorize")
        prof.begin_tasks(levels=[0, 1, 1])
        t0 = prof.task_start(0, [])
        prof.end(t0)
        t2 = prof.task_start(2, [])
        prof.end(t2)
        # cblk 1 depends on 0 and 2: parent must be the span of max(0, 2)
        t1 = prof.task_start(1, [0, 2])
        prof.end(t1)
        prof.end(phase)
        spans = {s.span_id: s for s in prof.events()}
        assert spans[t0].parent_id == phase
        assert spans[t0].link == LINK_CHILD
        assert spans[t1].parent_id == t2
        assert spans[t1].link == LINK_FOLLOWS
        assert spans[t1].attrs["level"] == 1
        assert prof.task_span_of(2) == t2

    def test_phase_span_emits_telemetry_event(self):
        from repro.runtime.telemetry import Telemetry

        tele = Telemetry()
        prof = SpanProfiler(telemetry=tele)
        with prof.span("factorize", strategy="just-in-time"):
            with prof.span("factor", cblk=0):  # nested: no event
                pass
        names = [e["name"] for e in tele.ring.events()
                 if e["kind"] == "span"]
        assert names == ["factorize"]


class TestCanonicalTree:
    def test_ignores_timestamps_threads_and_sibling_order(self):
        def build(order):
            prof = SpanProfiler()
            for name in order:
                sid = prof.start(name, parent=prof.root_id, cblk=name)
                prof.end(sid)
            prof.finish()
            return canonical_tree(prof.events())

        assert build(["a", "b", "c"]) == build(["c", "a", "b"])

    def test_distinguishes_edges_and_attrs(self):
        def build(attr):
            prof = SpanProfiler()
            sid = prof.start("t", cblk=attr)
            prof.end(sid)
            prof.finish()
            return canonical_tree(prof.events())

        assert build(1) != build(2)


class TestEngineEquivalence:
    """Threaded and sequential traced runs: same tree, same bits."""

    @pytest.mark.parametrize("order", ["ucf", "fuc"])
    def test_span_trees_equal_across_engines(self, order):
        a = laplacian_2d(12)
        trees, digests = {}, {}
        for engine, overrides in ENGINES.items():
            s, prof = profiled_solver(
                a, strategy="just-in-time", variant=order, **overrides)
            assert prof.check_invariants() == [], (engine, order)
            assert prof.meta["engine"] in ("sequential-pull",
                                           "threaded-dynamic",
                                           "threaded-static")
            trees[engine] = canonical_tree(prof.events())
            digests[engine] = factor_digest(s)
        assert trees["sequential"] == trees["threaded-dynamic"]
        assert trees["sequential"] == trees["threaded-static"]
        assert len(set(digests.values())) == 1

    def test_profiling_does_not_change_float64_factor_bits(self):
        a = laplacian_2d(12)
        plain = Solver(a, tiny_blr_config(strategy="just-in-time"))
        plain.factorize()
        profiled, prof = profiled_solver(a, strategy="just-in-time")
        assert factor_digest(plain) == factor_digest(profiled)
        assert prof.check_invariants() == []

    def test_full_pipeline_phases_recorded(self):
        a = laplacian_2d(10)
        prof = SpanProfiler()
        s = Solver(a, tiny_blr_config(strategy="just-in-time",
                                      profiler=prof))
        s.factorize()
        b = np.ones(a.n)
        x = s.solve(b)
        s.refine(b, x0=x)
        prof.finish()
        names = {sp.name for sp in prof.events()}
        for expected in ("run", "analyze", "ordering", "symbolic",
                         "assemble", "factorize", "task", "factor",
                         "solve", "trisolve", "refinement"):
            assert expected in names, expected
        # phase spans are the direct children of the root
        root = prof.root_id
        phases = {sp.name for sp in prof.events() if sp.parent_id == root}
        assert {"analyze", "factorize", "solve", "refinement"} <= phases


class TestRollupAndExporters:
    @pytest.fixture(scope="class")
    def doc(self):
        a = laplacian_2d(10)
        prof = SpanProfiler()
        s = Solver(a, tiny_blr_config(strategy="just-in-time",
                                      profiler=prof))
        s.factorize()
        s.solve(np.ones(a.n))
        prof.finish()
        return prof.to_json()

    def test_phase_rollup_shape(self, doc):
        roll = phase_rollup(doc)
        assert roll["total_time"] > 0
        assert set(roll["phases"]) == {"analyze", "factorize", "solve"}
        fact = roll["phases"]["factorize"]
        assert 0 <= fact["self_time"] <= fact["time"]
        assert roll["kernels"]["task"]["count"] > 0
        assert roll["kernels"]["factor"]["count"] > 0
        assert roll["by_level"], "task spans must carry level attributes"

    def test_chrome_trace_export(self, doc, tmp_path):
        out = export_chrome_trace(doc, tmp_path / "trace.json")
        data = json.loads(out.read_text())
        events = data["traceEvents"]
        assert all(ev["ph"] == "X" for ev in events)
        assert len(events) == sum(1 for s in doc["spans"]
                                  if s["t1"] >= s["t0"])
        names = {ev["name"] for ev in events}
        assert "factorize" in names and "factor" in names

    def test_speedscope_export_nests_per_thread(self, doc, tmp_path):
        out = export_speedscope(doc, tmp_path / "prof.speedscope.json")
        data = json.loads(out.read_text())
        assert data["$schema"].endswith("file-format-schema.json")
        assert data["profiles"], "at least one per-thread profile"
        for profile in data["profiles"]:
            depth = 0
            for ev in profile["events"]:
                depth += 1 if ev["type"] == "O" else -1
                assert depth >= 0
            assert depth == 0, "unbalanced open/close events"

    def test_rollup_accepts_file_path(self, doc, tmp_path):
        path = tmp_path / "spans.json"
        path.write_text(json.dumps(doc))
        assert phase_rollup(path)["total_time"] == \
            phase_rollup(doc)["total_time"]


class TestAttribution:
    def _report(self, factor=1.0):
        phases = {"analyze": 0.2, "factorize": 1.0 * factor, "solve": 0.1}
        return {
            "schema": "repro.run_report/v1",
            "workload": "lap",
            "profile": {
                "total_time": sum(phases.values()),
                "meta": {"engine": "sequential-pull", "threads": 1},
                "phases": {k: {"time": v, "self_time": v, "count": 1}
                           for k, v in phases.items()},
                "kernels": {},
                "by_level": {"0": {"time": 0.5 * factor, "count": 3}},
                "by_order": {},
            },
            "compression": {"total_nbytes": int(1000 * factor)},
        }

    def test_ranked_by_absolute_delta(self):
        att = report_attribution(self._report(), self._report(factor=2.0))
        assert att["phases"][0]["phase"] == "factorize"
        assert att["top_regression"] == "factorize"
        deltas = [abs(r["delta"]) for r in att["phases"]
                  if r["delta"] is not None]
        assert deltas == sorted(deltas, reverse=True)

    def test_byte_delta_and_levels(self):
        att = report_attribution(self._report(), self._report(factor=2.0))
        assert att["factor_bytes"]["delta"] == 1000
        assert att["by_level"][0]["delta"] == pytest.approx(0.5)

    def test_falls_back_to_timings_without_profile(self):
        a = {"schema": "repro.run_report/v1", "workload": "x",
             "timings": {"factor_time": 1.0, "solve_time": 0.1}}
        b = {"schema": "repro.run_report/v1", "workload": "x",
             "timings": {"factor_time": 2.0, "solve_time": 0.1}}
        att = report_attribution(a, b)
        assert att["top_regression"] == "factorize"

    def test_render_and_summary(self):
        att = report_attribution(self._report(), self._report(factor=2.0))
        text = render_attribution(att)
        assert "Largest regression: **factorize**" in text
        assert "| factorize |" in text
        note = summarize_attribution(att)
        assert note.startswith("slowest-moving phase: factorize")

    def test_identical_reports_have_no_regression(self):
        att = report_attribution(self._report(), self._report())
        assert att["top_regression"] is None
        assert summarize_attribution(att) is None


class TestDisabledAndEnabledOverhead:
    def test_profiling_is_off_by_default(self):
        s = Solver(laplacian_2d(6), tiny_blr_config())
        s.factorize()
        assert s.config.profiler is None

    def test_profiled_overhead_under_5_percent(self):
        """Span recording must not slow a laplacian_3d(8) JIT/RRQR
        factorization by more than 5% (plus a small absolute epsilon
        for scheduler noise) — the bound CI enforces on tier-0."""
        from repro.config import SolverConfig

        a = laplacian_3d(8)

        def best_of(profile, reps=3):
            times = []
            for _ in range(reps):
                cfg = SolverConfig.laptop_scale(
                    strategy="just-in-time", kernel="rrqr",
                    profiler=SpanProfiler() if profile else None)
                s = Solver(a, cfg)
                s.analyze()
                t0 = time.perf_counter()
                s.factorize()
                times.append(time.perf_counter() - t0)
            return min(times)

        best_of(False, reps=1)  # warm the caches
        t_off = best_of(False)
        t_on = best_of(True)
        assert t_on <= 1.05 * t_off + 0.02, (
            f"profiling overhead too high: off={t_off:.4f}s on={t_on:.4f}s")
