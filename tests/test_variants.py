"""Tests for the composable BLR variant engine (``repro.core.variants``).

Covers the three orthogonal axes (loop order, threshold mode,
recompression toggle), the alias bit-identity pins, the adaptive
per-supernode policy (probe and history paths), and the variant-space
escalation ladder.
"""

from __future__ import annotations

from dataclasses import asdict, replace

import numpy as np
import pytest

from repro.config import SolverConfig
from repro.core.solver import Solver
from repro.core.variants import (
    ALIAS_ORDERS,
    ORDER_LADDER,
    ORDERS,
    THRESHOLD_MODES,
    AdaptivePolicy,
    BlrVariant,
    history_from_factor,
    resolve_variant,
)
from repro.lowrank.block import LowRankBlock
from repro.lowrank.kernels import lr_product
from repro.lowrank.rrqr import rrqr_compress
from repro.lowrank.svd import svd_compress
from repro.runtime.recovery import (
    STRATEGY_LADDER,
    RecoveryPolicy,
    escalate_config,
)
from repro.sparse.generators import convection_diffusion_3d, laplacian_3d
from tests.conftest import tiny_blr_config
from tests.test_backend_conformance import SEED_DIGESTS
from tests.test_recovery import factor_digest


def solve_err(a, cfg):
    s = Solver(a, cfg)
    s.factorize()
    b = np.ones(a.n)
    return s, s.backward_error(s.solve(b), b)


# ----------------------------------------------------------------------
# the BlrVariant policy object
# ----------------------------------------------------------------------

class TestBlrVariant:
    def test_defaults_are_jit_shaped(self):
        v = BlrVariant()
        assert (v.order, v.threshold_mode, v.recompress) == \
            ("ucf", "local", True)

    @pytest.mark.parametrize("order", ORDERS)
    def test_exactly_one_compression_point(self, order):
        v = BlrVariant(order=order)
        points = [v.compress_at_assembly, v.compress_before_solve,
                  v.compress_after_solve, v.compress_after_updates]
        assert sum(points) == 1

    def test_invalid_axes_raise(self):
        with pytest.raises(ValueError, match="loop order"):
            BlrVariant(order="fcu")
        with pytest.raises(ValueError, match="threshold_mode"):
            BlrVariant(threshold_mode="relative")

    def test_with_order_keeps_other_axes(self):
        v = BlrVariant(order="cuf", threshold_mode="global",
                       recompress=False)
        w = v.with_order("fuc")
        assert (w.order, w.threshold_mode, w.recompress) == \
            ("fuc", "global", False)

    def test_compress_scale_hand_computed(self):
        tau, p, norm = 1e-8, 25, 300.0
        assert BlrVariant(threshold_mode="local").compress_scale(
            tau, p, norm) == (tau, None)
        assert BlrVariant(threshold_mode="local-scaled").compress_scale(
            tau, p, norm) == (tau / 25, None)
        assert BlrVariant(threshold_mode="global").compress_scale(
            tau, p, norm) == (tau, 300.0)
        assert BlrVariant(threshold_mode="global-scaled").compress_scale(
            tau, p, norm) == (tau / 25, 300.0)
        # degenerate block counts never divide by zero
        assert BlrVariant(threshold_mode="local-scaled").compress_scale(
            tau, 0, norm) == (tau, None)


class TestResolveVariant:
    def test_dense_has_no_variant(self):
        assert resolve_variant(tiny_blr_config(strategy="dense")) is None
        assert tiny_blr_config(strategy="dense").resolved_variant() is None

    @pytest.mark.parametrize("strategy,order", sorted(ALIAS_ORDERS.items()))
    def test_alias_orders(self, strategy, order):
        v = resolve_variant(tiny_blr_config(strategy=strategy))
        assert v is not None and v.order == order

    def test_explicit_variant_wins_over_alias(self):
        cfg = tiny_blr_config(strategy="minimal-memory", variant="fuc")
        assert resolve_variant(cfg).order == "fuc"

    def test_threshold_axes_forwarded(self):
        cfg = tiny_blr_config(threshold_mode="global-scaled",
                              recompress_updates=False)
        v = resolve_variant(cfg)
        assert v.threshold_mode == "global-scaled"
        assert v.recompress is False


class TestConfigValidation:
    def test_variant_requires_blr_strategy(self):
        with pytest.raises(ValueError, match="dense"):
            tiny_blr_config(strategy="dense", variant="ucf")

    def test_variant_conflicts_with_adaptive(self):
        with pytest.raises(ValueError, match="adaptive"):
            tiny_blr_config(strategy="adaptive", variant="ucf")

    def test_unknown_axes_rejected(self):
        with pytest.raises(ValueError):
            tiny_blr_config(variant="xyz")
        with pytest.raises(ValueError):
            tiny_blr_config(threshold_mode="xyz")

    def test_adaptive_policy_requires_adaptive_strategy(self):
        with pytest.raises(ValueError, match="adaptive"):
            tiny_blr_config(strategy="just-in-time",
                            adaptive=AdaptivePolicy())

    def test_adaptive_policy_dict_coerced(self):
        cfg = tiny_blr_config(strategy="adaptive",
                              adaptive={"probe_blocks": 3})
        assert isinstance(cfg.adaptive, AdaptivePolicy)
        assert cfg.adaptive.probe_blocks == 3

    def test_config_roundtrips_through_asdict(self):
        cfg = tiny_blr_config(strategy="adaptive",
                              adaptive=AdaptivePolicy(probe_blocks=3))
        clone = SolverConfig(**asdict(replace(cfg, telemetry=None)))
        assert clone.adaptive == cfg.adaptive
        assert clone.variant == cfg.variant
        assert clone.threshold_mode == cfg.threshold_mode

    @pytest.mark.parametrize("overrides", [
        dict(strategy="minimal-memory"),
        dict(strategy="just-in-time", variant="cuf"),
        dict(strategy="adaptive"),
    ])
    def test_left_looking_rejects_assembly_compression(self, overrides):
        with pytest.raises(ValueError, match="left_looking"):
            tiny_blr_config(left_looking=True, **overrides)

    @pytest.mark.parametrize("order", ("ucf", "ufc", "fuc"))
    def test_left_looking_accepts_late_orders(self, order):
        cfg = tiny_blr_config(left_looking=True, variant=order)
        assert cfg.resolved_variant().order == order


# ----------------------------------------------------------------------
# bit-identity: explicit loop orders reproduce the strategy-alias seeds
# ----------------------------------------------------------------------

class TestAliasBitIdentity:
    """``minimal-memory`` ≡ ``cuf`` and ``just-in-time`` ≡ ``ucf``:
    pinned sha256-identical float64 factors (same pins as the backend
    conformance suite)."""

    def _digest(self, **overrides):
        s = Solver(laplacian_3d(6),
                   tiny_blr_config(tolerance=1e-8, backend="numpy",
                                   **overrides))
        s.factorize()
        return factor_digest(s.factor)

    def test_explicit_cuf_matches_minimal_memory_pin(self):
        assert self._digest(strategy="just-in-time", variant="cuf") == \
            SEED_DIGESTS[("minimal-memory", "lu")]

    def test_explicit_ucf_matches_just_in_time_pin(self):
        assert self._digest(strategy="just-in-time", variant="ucf") == \
            SEED_DIGESTS[("just-in-time", "lu")]

    def test_local_mode_and_recompress_are_the_pinned_defaults(self):
        assert self._digest(strategy="just-in-time", variant="ucf",
                            threshold_mode="local",
                            recompress_updates=True) == \
            SEED_DIGESTS[("just-in-time", "lu")]


# ----------------------------------------------------------------------
# correctness matrix: every order x threshold mode (and dtypes/factotypes)
# ----------------------------------------------------------------------

@pytest.mark.parametrize("order", ORDERS)
class TestVariantMatrix:
    @pytest.mark.parametrize("mode", THRESHOLD_MODES)
    def test_order_x_threshold_mode(self, order, mode):
        a = laplacian_3d(6)
        cfg = tiny_blr_config(variant=order, threshold_mode=mode,
                              tolerance=1e-8)
        _, err = solve_err(a, cfg)
        # scaled modes only tighten; 100x headroom as in the strategy suite
        assert err <= 1e-6

    @pytest.mark.parametrize("dtype,bound", [("float64", 1e-6),
                                             ("float32", 5e-3)])
    def test_order_x_dtype(self, order, dtype, bound):
        a = laplacian_3d(6)
        cfg = tiny_blr_config(variant=order, tolerance=1e-8, dtype=dtype)
        _, err = solve_err(a, cfg)
        assert err <= bound

    def test_order_cholesky(self, order):
        a = laplacian_3d(6)
        cfg = tiny_blr_config(variant=order, factotype="cholesky",
                              tolerance=1e-8)
        _, err = solve_err(a, cfg)
        assert err <= 1e-6

    def test_order_nonsymmetric(self, order):
        a = convection_diffusion_3d(5, peclet=0.6)
        cfg = tiny_blr_config(variant=order, tolerance=1e-8)
        _, err = solve_err(a, cfg)
        assert err <= 1e-5

    def test_threaded_matches_sequential_bitwise(self, order):
        """Every loop order keeps the bit-reproducibility contract under
        both threaded engines (the FUC finalize fires only after the last
        pull of immutable dense panels)."""
        a = laplacian_3d(6)
        digests = set()
        for threads, sched in ((1, "dynamic"), (4, "dynamic"),
                               (4, "static")):
            s = Solver(a, tiny_blr_config(variant=order, tolerance=1e-8,
                                          threads=threads, scheduler=sched))
            s.factorize()
            digests.add(factor_digest(s.factor))
        assert len(digests) == 1


# ----------------------------------------------------------------------
# threshold modes: hand-computed kernel-level behaviour
# ----------------------------------------------------------------------

class TestThresholdModes:
    def test_svd_norm_ref_raises_truncation_threshold(self):
        # singular values 1, 1e-2, 1e-9: at tol=1e-4 the local rule keeps
        # rank 2 (tail 1e-9), a norm_ref of 1e3 raises the threshold to
        # 1e-4 * 1e3 = 0.1 and truncates the 1e-2 mode too
        a = np.diag([1.0, 1e-2, 1e-9, 0.0, 0.0, 0.0])
        assert svd_compress(a, 1e-4).rank == 2
        assert svd_compress(a, 1e-4, norm_ref=1e3).rank == 1

    def test_rrqr_norm_ref_raises_truncation_threshold(self):
        rng = np.random.default_rng(5)
        q1 = np.linalg.qr(rng.standard_normal((12, 3)))[0]
        q2 = np.linalg.qr(rng.standard_normal((8, 3)))[0]
        a = (q1 * np.array([1.0, 1e-2, 1e-9])) @ q2.T
        assert rrqr_compress(a, 1e-4).rank == 2
        assert rrqr_compress(a, 1e-4, norm_ref=1e3).rank == 1

    def test_global_mode_truncates_at_least_as_hard_as_local(self):
        """norm_ref = ||A||_F >= every block norm, so per-block ranks can
        only shrink — the compress-once UCF order makes that a deterministic
        factor-size ordering."""
        a = laplacian_3d(8)
        sizes = {}
        for mode in ("local", "global"):
            s, err = solve_err(a, tiny_blr_config(variant="ucf",
                                                  threshold_mode=mode,
                                                  tolerance=1e-5))
            sizes[mode] = s.stats.factor_nbytes
            # the global reference truncates relative to ||A||_F, so the
            # per-block backward error is allowed to grow accordingly
            assert err <= 1e-1
        assert sizes["global"] <= sizes["local"]

    def test_scaled_mode_keeps_at_least_local_accuracy(self):
        a = laplacian_3d(8)
        sizes = {}
        for mode in ("local", "local-scaled"):
            s, err = solve_err(a, tiny_blr_config(variant="ucf",
                                                  threshold_mode=mode,
                                                  tolerance=1e-4))
            sizes[mode] = s.stats.factor_nbytes
            assert err <= 1e-2
        # tau/p only lowers the threshold: ranks (and bytes) cannot shrink
        assert sizes["local-scaled"] >= sizes["local"]

    def test_effective_threshold_recorded_on_factor(self):
        a = laplacian_3d(6)
        cfg = tiny_blr_config(variant="ucf", threshold_mode="global-scaled",
                              tolerance=1e-8)
        s = Solver(a, cfg)
        s.factorize()
        fac = s.factor
        p = fac.symb.ncblk
        assert fac.comp_tol == pytest.approx(1e-8 / p)
        assert fac.comp_norm_ref == pytest.approx(fac.global_norm)
        assert fac.global_norm > 0.0


# ----------------------------------------------------------------------
# the recompression toggle
# ----------------------------------------------------------------------

class TestRecompressToggle:
    def test_lr_product_without_recompression_is_exact(self):
        rng = np.random.default_rng(0)
        a = LowRankBlock(rng.standard_normal((12, 3)),
                         rng.standard_normal((10, 3)))
        b = LowRankBlock(rng.standard_normal((9, 5)),
                         rng.standard_normal((10, 5)))
        ref = a.to_dense() @ b.to_dense().T
        out = lr_product(a, b, 1e-12, "svd", recompress=False)
        # the exact T core is folded into the smaller-rank side
        assert out.rank == min(a.rank, b.rank)
        assert np.linalg.norm(out.to_dense() - ref) <= 1e-12 * \
            np.linalg.norm(ref)

    @pytest.mark.parametrize("strategy", ("minimal-memory", "just-in-time"))
    def test_end_to_end_without_recompression(self, strategy):
        a = laplacian_3d(6)
        cfg = tiny_blr_config(strategy=strategy, recompress_updates=False,
                              tolerance=1e-8)
        _, err = solve_err(a, cfg)
        assert err <= 1e-6


# ----------------------------------------------------------------------
# adaptive per-supernode strategy
# ----------------------------------------------------------------------

class TestAdaptivePolicyUnit:
    def test_probe_classification(self):
        pol = AdaptivePolicy(compress_early_ratio=0.15, dense_ratio=0.85)
        assert pol.decide(0, None).order == "dense"
        assert pol.decide(0, None).reason == "no-candidates"
        assert pol.decide(1, 0.1).order == "cuf"
        assert pol.decide(2, 0.5).order == "ucf"
        assert pol.decide(3, 0.9).order == "dense"

    def test_history_classification(self):
        pol = AdaptivePolicy()
        hist_dense = {"ratio": 0.9, "dense_fraction": 0.8}
        hist_early = {"ratio": 0.05, "dense_fraction": 0.0}
        hist_late = {"ratio": 0.4, "dense_fraction": 0.1}
        assert pol.decide(0, None, hist_dense).reason == "history-dense"
        assert pol.decide(0, None, hist_early).order == "cuf"
        assert pol.decide(0, None, hist_late).order == "ucf"
        # probe ratio is ignored when history is present
        assert pol.decide(0, 0.01, hist_dense).order == "dense"

    def test_history_disabled_falls_back_to_probe(self):
        pol = AdaptivePolicy(use_history=False)
        hist = {"ratio": 0.9, "dense_fraction": 1.0}
        assert pol.decide(0, 0.05, hist).order == "cuf"

    def test_validation(self):
        with pytest.raises(ValueError):
            AdaptivePolicy(compress_early_ratio=1.5)
        with pytest.raises(ValueError):
            AdaptivePolicy(dense_ratio=0.0)
        with pytest.raises(ValueError):
            AdaptivePolicy(compress_early_ratio=0.9, dense_ratio=0.5)
        with pytest.raises(ValueError):
            AdaptivePolicy(probe_blocks=0)


class TestAdaptiveEndToEnd:
    def test_decisions_cover_every_supernode(self):
        a = laplacian_3d(8)
        s, err = solve_err(a, tiny_blr_config(strategy="adaptive",
                                              tolerance=1e-4))
        fac = s.factor
        assert err <= 1e-2
        assert fac.decisions is not None
        assert len(fac.decisions) == fac.symb.ncblk
        assert {d.order for d in fac.decisions} <= {"cuf", "ucf", "dense"}

    def test_factor_size_no_worse_than_best_static(self):
        """The acceptance criterion: on a matrix with mixed-rank
        supernodes the adaptive strategy matches the best static variant
        byte-for-byte (it picks the same compression point wherever
        compression pays and skips the attempts where it does not)."""
        a = laplacian_3d(8)
        static = {}
        for order in ORDERS:
            s, err = solve_err(a, tiny_blr_config(variant=order,
                                                  tolerance=1e-4))
            static[order] = s.stats.factor_nbytes
            assert err <= 1e-2
        pol = AdaptivePolicy(dense_ratio=1.0)
        s, err = solve_err(a, tiny_blr_config(strategy="adaptive",
                                              adaptive=pol,
                                              tolerance=1e-4))
        assert err <= 1e-2
        assert s.stats.factor_nbytes <= min(static.values())

    def test_decisions_surface_in_run_report(self):
        from repro.analysis.report import render_markdown

        a = laplacian_3d(8)
        s, err = solve_err(a, tiny_blr_config(strategy="adaptive",
                                              tolerance=1e-4))
        rep = s.run_report(workload="lap3d:8", backward_error=err)
        var = rep["variants"]
        assert var["strategy"] == "adaptive"
        assert var["adaptive"] is True
        assert sum(var["decision_counts"].values()) == s.factor.symb.ncblk
        assert len(var["decisions"]) == s.factor.symb.ncblk
        assert {"cblk", "order", "reason", "ratio"} <= \
            set(var["decisions"][0])
        md = render_markdown(rep)
        assert "Adaptive per-supernode decisions" in md

    def test_decisions_recorded_on_telemetry(self):
        from repro.runtime.telemetry import Telemetry

        a = laplacian_3d(8)
        cfg = tiny_blr_config(strategy="adaptive", tolerance=1e-4,
                              telemetry=Telemetry())
        s = Solver(a, cfg)
        s.factorize()
        snap = cfg.telemetry.snapshot()
        total = sum(c["value"] for c in
                    snap["counters"].get("variant_decisions", []))
        assert total == s.factor.symb.ncblk

    def test_refactorization_uses_history(self):
        a = laplacian_3d(8)
        s = Solver(a, tiny_blr_config(strategy="adaptive", tolerance=1e-4))
        s.factorize()
        hist = history_from_factor(s.factor)
        assert hist  # compression happened somewhere at tau=1e-4
        s.update_values(a)
        s.factorize()
        reasons = {d.reason for d in s.factor.decisions}
        assert reasons & {"history-dense", "history-early", "history-late"}
        b = np.ones(a.n)
        assert s.backward_error(s.solve(b), b) <= 1e-2

    def test_non_adaptive_runs_make_no_decisions(self):
        a = laplacian_3d(6)
        s, _ = solve_err(a, tiny_blr_config(strategy="just-in-time"))
        assert s.factor.decisions is None
        rep = s.run_report()
        assert rep["variants"]["adaptive"] is False
        assert rep["variants"]["decision_counts"] is None


# ----------------------------------------------------------------------
# escalation ladder in variant terms
# ----------------------------------------------------------------------

class TestEscalation:
    #: tolerance already below the floor: the tau-tightening path is
    #: exhausted and escalate_config goes straight to the downgrade rung
    POLICY = RecoveryPolicy(tau_floor=1e-10)

    def test_explicit_variant_walks_the_order_ladder(self):
        cfg = tiny_blr_config(variant="cuf", tolerance=1e-12)
        seen = []
        while cfg is not None and cfg.strategy != "dense":
            cfg = escalate_config(cfg, self.POLICY)
            seen.append((cfg.strategy, cfg.variant))
        assert seen == [("just-in-time", "ucf"), ("just-in-time", "ufc"),
                        ("just-in-time", "fuc"), ("dense", None)]
        assert escalate_config(cfg, self.POLICY) is None

    def test_order_ladder_is_compress_later(self):
        order = ["cuf"]
        while ORDER_LADDER[order[-1]] is not None:
            order.append(ORDER_LADDER[order[-1]])
        assert order == list(ORDERS)

    def test_alias_ladder_regression(self):
        """The historic MM -> JIT -> dense ladder is untouched for
        alias-named configs."""
        cfg = tiny_blr_config(strategy="minimal-memory", tolerance=1e-12)
        rung1 = escalate_config(cfg, self.POLICY)
        assert rung1.strategy == STRATEGY_LADDER["minimal-memory"]
        assert rung1.variant is None
        rung2 = escalate_config(rung1, self.POLICY)
        assert rung2.strategy == "dense"
        assert escalate_config(rung2, self.POLICY) is None

    def test_adaptive_downgrades_to_jit(self):
        cfg = tiny_blr_config(strategy="adaptive", tolerance=1e-12)
        assert escalate_config(cfg, self.POLICY).strategy == "just-in-time"

    def test_tau_tightening_preserves_variant(self):
        cfg = tiny_blr_config(variant="fuc", tolerance=1e-6)
        rung = escalate_config(cfg, RecoveryPolicy())
        assert rung.variant == "fuc"
        assert rung.tolerance == pytest.approx(1e-7)

    def test_recovery_completes_under_variant(self):
        """A poisoned run under an explicit loop order self-heals through
        the variant ladder."""
        from repro.runtime.faults import FaultInjector

        a = laplacian_3d(6)
        cfg = tiny_blr_config(variant="fuc", tolerance=1e-8,
                              recovery=RecoveryPolicy())
        s = Solver(a, cfg)
        inj = FaultInjector(seed=0)
        inj.fail_factor(2, transient=True)
        s.factorize(faults=inj)
        b = np.ones(a.n)
        assert s.backward_error(s.solve(b), b) <= 1e-6


# ----------------------------------------------------------------------
# CLI surface
# ----------------------------------------------------------------------

class TestCli:
    def test_solve_with_variant_flags(self, capsys):
        from repro.cli import main

        rc = main(["solve", "--generate", "lap3d:5", "--variant", "ufc",
                   "--threshold-mode", "global", "--no-recompress"])
        assert rc == 0
        assert "backward error" in capsys.readouterr().out

    def test_bench_variants_writes_json(self, tmp_path, capsys):
        from repro.cli import main

        out = tmp_path / "variants.json"
        rc = main(["bench-variants", "--generate", "lap3d:5",
                   "--json", str(out)])
        assert rc == 0
        import json

        payload = json.loads(out.read_text())
        labels = {r["variant"] for r in payload["runs"]}
        assert {f"{o}/local" for o in ORDERS} <= labels
        assert {"adaptive", "dense"} <= labels
        for r in payload["runs"]:
            assert r["backward_error"] <= 1e-6

    def test_bench_variants_rejects_unknown_mode(self):
        from repro.cli import main

        with pytest.raises(SystemExit):
            main(["bench-variants", "--generate", "lap3d:5",
                  "--modes", "bogus"])
