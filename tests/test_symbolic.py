"""Tests for the symbolic block factorization."""

import numpy as np
import pytest

from repro.sparse.generators import (
    convection_diffusion_3d,
    laplacian_2d,
    laplacian_3d,
)
from repro.sparse.permute import is_permutation, permute_symmetric
from repro.symbolic.factorization import SymbolicOptions, symbolic_factorization
from repro.symbolic.structure import (
    SymbolicBlock,
    SymbolicColumnBlock,
    SymbolicFactor,
)

OPTS = SymbolicOptions(cmin=8, split_size=32, split_min=16,
                       compress_min_width=12, compress_min_height=4)


def coverage_mask(symb, n):
    cov = np.zeros((n, n), dtype=bool)
    for cb in symb.cblks:
        for b in cb.blocks:
            cov[b.first_row:b.end_row, cb.first_col:cb.end_col] = True
    return cov


def fill_pattern(ap):
    d = (ap.to_dense() != 0)
    for k in range(ap.n):
        nz = np.flatnonzero(d[k + 1:, k]) + k + 1
        for i in nz:
            d[i, nz] = True
            d[nz, i] = True
    return d


class TestPipeline:
    @pytest.mark.parametrize("ordering", ["nested-dissection", "amd", "natural"])
    def test_covers_fill_for_all_orderings(self, ordering):
        a = laplacian_2d(6)
        opts = SymbolicOptions(cmin=6, split_size=16, split_min=8,
                               ordering=ordering)
        symb, perm = symbolic_factorization(a, opts)
        assert is_permutation(perm, a.n)
        ap = permute_symmetric(a, perm)
        fill = fill_pattern(ap)
        cov = coverage_mask(symb, a.n)
        # L coverage: every below-diagonal fill entry inside a block
        lower = np.tril(fill, -1)
        assert np.all(cov[lower]), "symbolic structure misses fill"

    def test_covers_fill_nonsymmetric(self):
        a = convection_diffusion_3d(4)
        symb, perm = symbolic_factorization(a, OPTS)
        ap = permute_symmetric(a.symmetrize_pattern(), perm)
        fill = fill_pattern(ap)
        cov = coverage_mask(symb, a.n)
        assert np.all(cov[np.tril(fill, -1)])

    def test_blocks_face_correct_cblk(self):
        a = laplacian_3d(4)
        symb, _ = symbolic_factorization(a, OPTS)
        for cb in symb.cblks:
            for b in cb.off_blocks():
                f = symb.cblks[b.facing]
                assert f.first_col <= b.first_row
                assert b.end_row <= f.end_col

    def test_lr_candidates_respect_thresholds(self):
        a = laplacian_3d(6)
        symb, _ = symbolic_factorization(a, OPTS)
        for cb in symb.cblks:
            for b in cb.off_blocks():
                if b.lr_candidate:
                    assert cb.ncols >= OPTS.compress_min_width
                    assert b.nrows >= OPTS.compress_min_height

    def test_split_size_respected(self):
        a = laplacian_3d(6)
        symb, _ = symbolic_factorization(a, OPTS)
        assert max(c.ncols for c in symb.cblks) <= OPTS.split_size

    def test_tiles_of_same_snode_share_offdiag_rows(self):
        a = laplacian_3d(6)
        symb, _ = symbolic_factorization(a, OPTS)
        by_snode = {}
        for cb in symb.cblks:
            by_snode.setdefault(cb.snode, []).append(cb)
        for snode, cbs in by_snode.items():
            if len(cbs) < 2:
                continue
            last_end = cbs[-1].end_col
            ext = [tuple((b.first_row, b.nrows) for b in cb.off_blocks()
                         if b.first_row >= last_end) for cb in cbs]
            assert all(e == ext[0] for e in ext)

    def test_reordering_does_not_change_coverage(self):
        a = laplacian_2d(7)
        s1, p1 = symbolic_factorization(
            a, SymbolicOptions(cmin=6, reorder_supernodes=False))
        s2, p2 = symbolic_factorization(
            a, SymbolicOptions(cmin=6, reorder_supernodes=True))
        for symb, perm in ((s1, p1), (s2, p2)):
            ap = permute_symmetric(a, perm)
            fill = fill_pattern(ap)
            assert np.all(coverage_mask(symb, a.n)[np.tril(fill, -1)])

    def test_reordering_not_worse_on_block_count(self):
        a = laplacian_3d(6)
        s_off = symbolic_factorization(
            a, SymbolicOptions(cmin=15, reorder_supernodes=False))[0]
        s_on = symbolic_factorization(
            a, SymbolicOptions(cmin=15, reorder_supernodes=True))[0]
        assert s_on.total_off_blocks() <= 1.2 * s_off.total_off_blocks()


class TestStructureValidation:
    def _diag(self, fc, w):
        return SymbolicBlock(fc, w, facing=0)

    def test_rejects_gap_in_columns(self):
        cb0 = SymbolicColumnBlock(0, 0, 2, 0, [self._diag(0, 2)])
        cb1 = SymbolicColumnBlock(1, 3, 1, 1,
                                  [SymbolicBlock(3, 1, facing=1)])
        with pytest.raises(ValueError, match="tile"):
            SymbolicFactor(4, [cb0, cb1])

    def test_rejects_bad_diag(self):
        cb = SymbolicColumnBlock(0, 0, 2, 0, [SymbolicBlock(1, 2, facing=0)])
        with pytest.raises(ValueError, match="diagonal"):
            SymbolicFactor(2, [cb])

    def test_rejects_overlapping_blocks(self):
        cb = SymbolicColumnBlock(0, 0, 1, 0, [
            SymbolicBlock(0, 1, facing=0),
            SymbolicBlock(1, 2, facing=1),
            SymbolicBlock(2, 2, facing=1),
        ])
        cb1 = SymbolicColumnBlock(1, 1, 3, 1, [SymbolicBlock(1, 3, facing=1)])
        with pytest.raises(ValueError, match="overlap"):
            SymbolicFactor(4, [cb, cb1])

    def test_rejects_wrong_ids(self):
        cb = SymbolicColumnBlock(3, 0, 2, 0, [self._diag(0, 2)])
        with pytest.raises(ValueError, match="ids"):
            SymbolicFactor(2, [cb])


class TestLookups:
    @pytest.fixture
    def symb(self):
        a = laplacian_3d(5)
        return symbolic_factorization(a, OPTS)[0]

    def test_cblk_of_col(self, symb):
        for cb in symb.cblks:
            assert symb.cblk_of_col(cb.first_col) == cb.id
            assert symb.cblk_of_col(cb.end_col - 1) == cb.id

    def test_find_blocks_returns_exact_overlaps(self, symb):
        for cb in symb.cblks:
            for b in cb.blocks:
                found = list(symb.find_blocks(cb.id, b.first_row,
                                              b.end_row))
                assert any(cb.blocks[i] is b for i, _, _ in found)
                for i, olo, ohi in found:
                    blk = cb.blocks[i]
                    assert blk.first_row <= olo < ohi <= blk.end_row

    def test_find_blocks_empty_range(self, symb):
        cb = symb.cblks[0]
        gap_row = cb.end_col  # row right after diag; may or may not be held
        hits = list(symb.find_blocks(0, gap_row, gap_row))
        assert hits == []

    def test_contributors_consistent_with_facing(self, symb):
        for cb in symb.cblks:
            for b in cb.off_blocks():
                assert cb.id in symb.contributors(b.facing)

    def test_block_etree_parents_are_later(self, symb):
        parent = symb.block_etree()
        for k, p in enumerate(parent):
            assert p == -1 or p > k

    def test_summary_keys(self, symb):
        s = symb.summary()
        for key in ("n", "ncblk", "nnz_blocks", "off_blocks",
                    "lr_candidates", "max_width", "mean_width"):
            assert key in s
