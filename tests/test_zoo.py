"""Matrix zoo: structural invariants, declared definiteness, perturbation
replay, and the scenario harness that sweeps the committed cases."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.diagnostics import factor_inertia
from repro.cli import compare_scenarios, run_scenarios
from repro.config import SolverConfig
from repro.core.solver import Solver
from repro.sparse.generators import (
    helmholtz_shift_sweep,
    perturb,
    saddle_point_kkt,
    stretched_mesh_3d,
    zoo,
)


@pytest.fixture
def rng():
    return np.random.default_rng(99)


ZOO = {c.name: c for c in zoo()}


class TestZooInvariants:
    @pytest.mark.parametrize("name", sorted(ZOO))
    def test_symmetric(self, name):
        d = ZOO[name].build().to_dense()
        np.testing.assert_allclose(d, d.T, rtol=0, atol=0)

    @pytest.mark.parametrize("name", sorted(ZOO))
    def test_declared_definiteness_matches_spectrum(self, name):
        case = ZOO[name]
        ev = np.linalg.eigvalsh(case.build().to_dense())
        nneg = int((ev < 0).sum())
        assert np.abs(ev).min() > 0  # every committed case is nonsingular
        if case.definiteness == "positive":
            assert nneg == 0
        else:
            assert case.definiteness == "indefinite"
            assert 0 < nneg < ev.size

    @pytest.mark.parametrize("name", sorted(ZOO))
    def test_builders_are_deterministic(self, name):
        a = ZOO[name].build()
        b = ZOO[name].build()
        np.testing.assert_array_equal(a.values, b.values)
        np.testing.assert_array_equal(a.rowind, b.rowind)

    def test_names_unique(self):
        names = [c.name for c in zoo()]
        assert len(names) == len(set(names))


class TestSaddlePointKKT:
    def test_inertia_by_construction(self):
        # n grid unknowns positive, m constraints negative (Sylvester)
        a = saddle_point_kkt(6, m=6)
        ev = np.linalg.eigvalsh(a.to_dense())
        assert int((ev < 0).sum()) == 6
        assert int((ev > 0).sum()) == 36

    def test_zero_block_is_structural(self):
        a = saddle_point_kkt(6, m=6)
        d = a.to_dense()
        assert np.all(np.diag(d)[36:] == 0.0)
        # ... but the diagonal entries exist in the pattern (explicit 0)
        for j in range(36, 42):
            rows, _ = a.column(j)
            assert j in rows

    def test_penalty_regularizes(self):
        a = saddle_point_kkt(6, m=6, penalty=1e-2)
        assert np.all(np.diag(a.to_dense())[36:] == -1e-2)

    def test_factor_inertia_with_natural_ordering(self, rng):
        # constraints are numbered last, so natural ordering eliminates
        # every unknown first and LDLt sees healthy negative diagonals
        a = saddle_point_kkt(8, m=10)
        s = Solver(a, SolverConfig(factotype="ldlt", strategy="dense",
                                   ordering="natural"))
        s.factorize()
        assert factor_inertia(s.factor) == (10, 0, 64)

    def test_validates_m(self):
        with pytest.raises(ValueError):
            saddle_point_kkt(4, m=100)


class TestStretchedMesh:
    def test_spd(self):
        a = stretched_mesh_3d(5, stretch=30.0)
        ev = np.linalg.eigvalsh(a.to_dense())
        assert ev.min() > 0

    def test_weight_contrast_scales_with_stretch(self):
        a = stretched_mesh_3d(4, stretch=100.0)
        off = a.values[a.values < 0]
        assert np.abs(off).max() / np.abs(off).min() > 1e3

    def test_validates_args(self):
        with pytest.raises(ValueError):
            stretched_mesh_3d(4, nz=1)
        with pytest.raises(ValueError):
            stretched_mesh_3d(4, stretch=0.0)


class TestPerturb:
    def test_reproducible_by_seed(self):
        base = ZOO["lap3d"].build()
        a = perturb(base, seed=5, magnitude=1e-6)
        b = perturb(base, seed=5, magnitude=1e-6)
        np.testing.assert_array_equal(a.values, b.values)

    def test_different_seeds_differ(self):
        base = ZOO["lap3d"].build()
        a = perturb(base, seed=5, magnitude=1e-6)
        b = perturb(base, seed=6, magnitude=1e-6)
        assert not np.array_equal(a.values, b.values)

    def test_preserves_symmetry_and_pattern(self):
        base = ZOO["kkt"].build()
        p = perturb(base, seed=1, magnitude=1e-4)
        d = p.to_dense()
        np.testing.assert_allclose(d, d.T, rtol=0, atol=0)
        np.testing.assert_array_equal(p.rowind, base.rowind)
        np.testing.assert_array_equal(p.colptr, base.colptr)

    def test_magnitude_bounds_relative_change(self):
        base = ZOO["lap3d"].build()
        p = perturb(base, seed=3, magnitude=1e-3)
        rel = np.abs(p.values - base.values) / np.abs(base.values)
        assert rel.max() <= 1e-3
        assert rel.max() > 0

    def test_zero_magnitude_is_identity(self):
        base = ZOO["stretched"].build()
        p = perturb(base, seed=7, magnitude=0.0)
        np.testing.assert_array_equal(p.values, base.values)

    def test_rejects_negative_magnitude(self):
        with pytest.raises(ValueError):
            perturb(ZOO["lap3d"].build(), seed=0, magnitude=-1.0)


class TestHelmholtzSweep:
    def test_labels_and_shapes(self):
        sweep = helmholtz_shift_sweep(5, wavenumbers=(1.0, 2.5))
        assert [label for label, _ in sweep] == ["helmholtz-k1",
                                                 "helmholtz-k2.5"]
        assert all(m.n == 125 for _, m in sweep)


class TestScenarioHarness:
    def test_run_scenarios_subset(self):
        recs = run_scenarios(cases=["lap3d"], strategies=("dense",))
        # 3 combos (cholesky, ldlt-static, ldlt-threshold) x bare/recovery
        assert len(recs) == 6
        assert all(r["status"] == "ok" for r in recs)
        assert all(r["backward_error"] < 1e-10 for r in recs)
        ids = {r["id"] for r in recs}
        assert "lap3d/cholesky-static/dense/bare" in ids

    def test_unknown_case_rejected(self):
        with pytest.raises(SystemExit):
            run_scenarios(cases=["no-such-matrix"])

    def test_compare_flags_status_flip(self):
        cur = [{"id": "a", "status": "ok", "backward_error": 1e-14}]
        base = {"scenarios": [{"id": "a", "status": "breakdown:x",
                               "backward_error": None}]}
        failures, warnings = compare_scenarios(cur, base)
        assert failures and not warnings

    def test_compare_flags_missing_scenario(self):
        base = {"scenarios": [{"id": "a", "status": "ok",
                               "backward_error": 1e-14},
                              {"id": "b", "status": "ok",
                               "backward_error": 1e-14}]}
        cur = [{"id": "a", "status": "ok", "backward_error": 1e-14}]
        failures, _ = compare_scenarios(cur, base)
        assert any("missing" in f for f in failures)

    def test_compare_warns_on_drift_and_new(self):
        base = {"scenarios": [{"id": "a", "status": "ok",
                               "backward_error": 1e-14}]}
        cur = [{"id": "a", "status": "ok", "backward_error": 5e-12},
               {"id": "b", "status": "ok", "backward_error": 1e-14}]
        failures, warnings = compare_scenarios(cur, base)
        assert not failures
        assert len(warnings) == 2  # drift on a, no baseline for b

    def test_compare_identical_is_clean(self):
        recs = [{"id": "a", "status": "ok", "backward_error": 1e-14},
                {"id": "b", "status": "breakdown:pivot-failure",
                 "backward_error": None}]
        failures, warnings = compare_scenarios(recs, {"scenarios": recs})
        assert not failures and not warnings


class TestIndefiniteZooEndToEnd:
    """ISSUE satellite: the indefinite committed cases solve at τ-level
    backward error under the new pivoting, and static pivoting breaches
    a pivot budget on at least one committed case."""

    @pytest.mark.parametrize("name", ["helmholtz-k2.2", "helmholtz-k3",
                                      "kkt-regularized"])
    @pytest.mark.parametrize("strategy", ["dense", "minimal-memory"])
    def test_threshold_pivoting_reaches_tau(self, name, strategy, rng):
        from tests.conftest import tiny_blr_config

        a = ZOO[name].build()
        b = rng.standard_normal(a.n)
        if strategy == "dense":
            cfg = SolverConfig(factotype="ldlt", strategy="dense",
                               pivoting="threshold")
        else:
            cfg = tiny_blr_config(factotype="ldlt", strategy=strategy,
                                  pivoting="threshold", tolerance=1e-12)
        s = Solver(a, cfg)
        s.factorize()
        x = s.solve(b)
        be = np.linalg.norm(b - a.matvec(x)) / np.linalg.norm(b)
        assert be < 1e-10

    def test_static_pivoting_breaches_budget_on_committed_case(self):
        from repro.runtime.recovery import NumericalBreakdown, RecoveryPolicy

        a = ZOO["kkt"].build()
        cfg = SolverConfig(
            factotype="ldlt", strategy="dense", pivoting="static",
            recovery=RecoveryPolicy(pivot_budget=0.0, max_retries=0))
        with pytest.raises(NumericalBreakdown) as ei:
            Solver(a, cfg).factorize()
        assert ei.value.cause == "pivot-budget"
