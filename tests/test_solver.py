"""Tests for the public Solver facade."""

import numpy as np
import pytest

from repro.core.solver import Solver
from repro.sparse.csc import CSCMatrix
from repro.sparse.generators import laplacian_2d, laplacian_3d
from tests.conftest import tiny_blr_config


class TestConstruction:
    def test_rejects_raw_scipy(self):
        sp = pytest.importorskip("scipy.sparse")
        mat = sp.eye(4, format="csc")
        with pytest.raises(TypeError, match="CSCMatrix"):
            Solver(mat)

    def test_accepts_converted_scipy(self):
        sp = pytest.importorskip("scipy.sparse")
        mat = sp.diags([[-1.0] * 5, [4.0] * 6, [-1.0] * 5],
                       [-1, 0, 1]).tocsc()
        s = Solver(CSCMatrix.from_scipy(mat), tiny_blr_config())
        s.factorize()

    def test_default_config(self):
        s = Solver(laplacian_2d(4))
        assert s.config.strategy == "just-in-time"

    def test_n_property(self):
        assert Solver(laplacian_2d(4)).n == 16


class TestAnalysisCaching:
    def test_analyze_runs_once(self):
        s = Solver(laplacian_2d(5), tiny_blr_config())
        symb1 = s.analyze()
        symb2 = s.analyze()
        assert symb1 is symb2

    def test_factorize_reuses_analysis(self):
        """Re-factorizing must not repeat the symbolic step — the paper's
        point that steps 1-2 are value-independent."""
        s = Solver(laplacian_2d(5), tiny_blr_config())
        s.factorize()
        symb = s.symbolic
        s.factorize()
        assert s.symbolic is symb

    def test_analyze_time_recorded(self):
        s = Solver(laplacian_2d(5), tiny_blr_config())
        s.analyze()
        assert s.analyze_time > 0


class TestSolvePaths:
    def test_solve_triggers_factorize(self, rng):
        s = Solver(laplacian_2d(4), tiny_blr_config())
        b = rng.standard_normal(s.n)
        x = s.solve(b)  # no explicit factorize()
        assert s.backward_error(x, b) <= 1e-10

    def test_stats_none_before_factorize(self):
        s = Solver(laplacian_2d(4), tiny_blr_config())
        assert s.stats is None

    def test_solve_time_accumulates(self, rng):
        s = Solver(laplacian_2d(5), tiny_blr_config())
        s.factorize()
        b = rng.standard_normal(s.n)
        s.solve(b)
        t1 = s.stats.solve_time
        s.solve(b)
        assert s.stats.solve_time > t1

    def test_backward_error_metric(self, rng):
        a = laplacian_2d(4)
        s = Solver(a, tiny_blr_config())
        x = rng.standard_normal(a.n)
        b = rng.standard_normal(a.n)
        expected = np.linalg.norm(a.matvec(x) - b) / np.linalg.norm(b)
        assert s.backward_error(x, b) == pytest.approx(expected)


class TestStatsContent:
    def test_table2_fields_populated(self):
        s = Solver(laplacian_3d(6),
                   tiny_blr_config(strategy="minimal-memory",
                                   tolerance=1e-6))
        st = s.factorize()
        assert st.total_time > 0
        assert st.factor_nbytes > 0
        assert st.dense_factor_nbytes > 0
        assert st.peak_nbytes > 0
        assert st.kernels.flop("block_facto") > 0
        assert st.kernels.flop("panel_solve") > 0

    def test_block_counts_sum(self):
        s = Solver(laplacian_3d(6),
                   tiny_blr_config(strategy="just-in-time", tolerance=1e-4))
        st = s.factorize()
        noff = s.symbolic.total_off_blocks()
        # LU stores L and Uᵗ sides: counters cover the L side blocks only
        assert st.nblocks_compressed + st.nblocks_dense == noff


class TestUpdateValues:
    def test_same_pattern_refactorization(self, rng):
        from repro.sparse.generators import heterogeneous_poisson_3d
        a1 = heterogeneous_poisson_3d(5, contrast=10.0, seed=1)
        a2 = heterogeneous_poisson_3d(5, contrast=1e4, seed=1)
        s = Solver(a1, tiny_blr_config(strategy="dense"))
        s.factorize()
        symb = s.symbolic
        s.update_values(a2)
        assert s.factor is None          # numerical state invalidated
        assert s.symbolic is symb        # analysis kept
        b = rng.standard_normal(a2.n)
        x = s.solve(b)                   # refactorizes with new values
        assert s.backward_error(x, b) <= 1e-9

    def test_rejects_different_pattern(self):
        a = laplacian_2d(4)          # 4x4 grid, n = 16
        s = Solver(a, tiny_blr_config())
        with pytest.raises(ValueError, match="pattern"):
            s.update_values(laplacian_2d(2, 8))  # 2x8 grid, also n = 16

    def test_rejects_wrong_dimension(self):
        a = laplacian_2d(4)
        s = Solver(a, tiny_blr_config())
        with pytest.raises(ValueError, match="dimension"):
            s.update_values(laplacian_2d(5))

    def test_rejects_non_cscmatrix(self):
        a = laplacian_2d(4)
        s = Solver(a, tiny_blr_config())
        with pytest.raises(TypeError):
            s.update_values(a.to_dense())


class TestTransposeSolve:
    def test_lu_transpose(self, rng):
        from repro.sparse.generators import convection_diffusion_3d
        a = convection_diffusion_3d(5, peclet=0.7)
        s = Solver(a, tiny_blr_config(strategy="dense"))
        s.factorize()
        b = rng.standard_normal(a.n)
        x = s.solve(b, trans=True)
        res = np.linalg.norm(a.rmatvec(x) - b) / np.linalg.norm(b)
        assert res <= 1e-10

    def test_blr_transpose(self, rng):
        from repro.sparse.generators import convection_diffusion_3d
        a = convection_diffusion_3d(6)
        s = Solver(a, tiny_blr_config(strategy="minimal-memory",
                                      tolerance=1e-8))
        s.factorize()
        b = rng.standard_normal(a.n)
        x = s.solve(b, trans=True)
        res = np.linalg.norm(a.rmatvec(x) - b) / np.linalg.norm(b)
        assert res <= 1e-4

    def test_symmetric_transpose_identical(self, rng):
        a = laplacian_3d(4)
        s = Solver(a, tiny_blr_config(strategy="dense",
                                      factotype="cholesky"))
        s.factorize()
        b = rng.standard_normal(a.n)
        np.testing.assert_allclose(s.solve(b, trans=True), s.solve(b),
                                   atol=1e-12)


class TestInputValidation:
    def test_rejects_nan_matrix(self):
        a = laplacian_2d(3)
        a.values[0] = np.nan  # poke an existing entry
        with pytest.raises(ValueError, match="NaN"):
            Solver(a, tiny_blr_config())

    def test_rejects_inf_matrix(self):
        a = laplacian_2d(3)
        a.values[1] = np.inf
        with pytest.raises(ValueError, match="NaN or Inf"):
            Solver(a, tiny_blr_config())

    def test_rejects_nan_rhs(self):
        a = laplacian_2d(3)
        s = Solver(a, tiny_blr_config())
        s.factorize()
        b = np.ones(a.n)
        b[2] = np.nan
        with pytest.raises(ValueError, match="NaN"):
            s.solve(b)

    def test_rejects_wrong_rhs_size(self):
        a = laplacian_2d(3)
        s = Solver(a, tiny_blr_config())
        s.factorize()
        with pytest.raises(ValueError, match="rows"):
            s.solve(np.ones(a.n + 1))


class TestRefineValidation:
    """``solve(refine=True)`` refines panels per column (the PR-1 multi-RHS
    ``ValueError`` is gone) and still refuses the transposed system."""

    def test_refine_accepts_multiple_rhs(self, rng):
        a = laplacian_2d(4)
        s = Solver(a, tiny_blr_config())
        s.factorize()
        b = rng.standard_normal((a.n, 3))
        x = s.solve(b, refine=True, refine_tol=1e-12)
        assert x.shape == b.shape
        res = s.last_refinement
        assert res.converged
        assert res.col_history is not None and len(res.col_history) == 3
        for j in range(3):
            rj = np.linalg.norm(a.matvec(x[:, j]) - b[:, j])
            assert rj / np.linalg.norm(b[:, j]) <= 1e-10

    def test_refine_rejects_transpose(self, rng):
        a = laplacian_2d(4)
        s = Solver(a, tiny_blr_config())
        s.factorize()
        b = rng.standard_normal(a.n)
        with pytest.raises(ValueError, match="transposed"):
            s.solve(b, refine=True, trans=True)

    def test_refine_single_rhs_still_works(self, rng):
        a = laplacian_3d(4)
        s = Solver(a, tiny_blr_config(strategy="minimal-memory",
                                      tolerance=1e-6))
        s.factorize()
        b = rng.standard_normal(a.n)
        x = s.solve(b, refine=True, refine_tol=1e-12)
        res = np.linalg.norm(a.matvec(x) - b) / np.linalg.norm(b)
        assert res <= 1e-10

    def test_unrefined_paths_unaffected(self, rng):
        a = laplacian_2d(4)
        s = Solver(a, tiny_blr_config())
        s.factorize()
        # plain multi-RHS and transposed solves remain fine
        xm = s.solve(rng.standard_normal((a.n, 2)))
        assert xm.shape == (a.n, 2)
        s.solve(rng.standard_normal(a.n), trans=True)
