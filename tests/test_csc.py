"""Tests for the CSC container."""

import numpy as np
import pytest

from repro.sparse.csc import CSCMatrix
from repro.sparse.generators import laplacian_2d


def small():
    # [[4, 0, 1],
    #  [0, 3, 0],
    #  [2, 0, 5]]
    return CSCMatrix.from_coo(3, [0, 2, 1, 0, 2], [0, 0, 1, 2, 2],
                              [4.0, 2.0, 3.0, 1.0, 5.0])


class TestConstruction:
    def test_from_coo_basic(self):
        a = small()
        assert a.n == 3
        assert a.nnz == 5
        np.testing.assert_allclose(
            a.to_dense(), [[4, 0, 1], [0, 3, 0], [2, 0, 5]])

    def test_from_coo_sums_duplicates(self):
        a = CSCMatrix.from_coo(2, [0, 0, 1], [0, 0, 1], [1.0, 2.0, 5.0])
        assert a.nnz == 2
        np.testing.assert_allclose(a.to_dense(), [[3, 0], [0, 5]])

    def test_from_coo_shape_mismatch(self):
        with pytest.raises(ValueError, match="equal shapes"):
            CSCMatrix.from_coo(2, [0, 1], [0], [1.0])

    def test_from_dense_roundtrip(self, rng):
        d = rng.standard_normal((7, 7))
        d[np.abs(d) < 0.8] = 0.0
        a = CSCMatrix.from_dense(d)
        np.testing.assert_allclose(a.to_dense(), d)

    def test_from_dense_rejects_rectangular(self):
        with pytest.raises(ValueError, match="square"):
            CSCMatrix.from_dense(np.ones((2, 3)))

    def test_scipy_roundtrip(self):
        sp = pytest.importorskip("scipy.sparse")
        a = small()
        s = a.to_scipy()
        back = CSCMatrix.from_scipy(s)
        np.testing.assert_allclose(back.to_dense(), a.to_dense())
        assert isinstance(s, sp.csc_matrix)

    def test_validation_rejects_bad_colptr(self):
        with pytest.raises(ValueError):
            CSCMatrix(2, np.array([0, 1]), np.array([0]), np.array([1.0]))

    def test_validation_rejects_unsorted_rows(self):
        with pytest.raises(ValueError, match="unsorted"):
            CSCMatrix(2, np.array([0, 2, 2]), np.array([1, 0]),
                      np.array([1.0, 2.0]))

    def test_validation_rejects_out_of_range_row(self):
        with pytest.raises(ValueError, match="out of range"):
            CSCMatrix(2, np.array([0, 1, 1]), np.array([5]),
                      np.array([1.0]))


class TestQueries:
    def test_column_view(self):
        a = small()
        rows, vals = a.column(0)
        np.testing.assert_array_equal(rows, [0, 2])
        np.testing.assert_allclose(vals, [4.0, 2.0])

    def test_diagonal(self):
        a = small()
        np.testing.assert_allclose(a.diagonal(), [4, 3, 5])

    def test_shape(self):
        assert small().shape == (3, 3)

    def test_norm1(self):
        a = small()
        assert a.norm1() == pytest.approx(6.0)  # max col sum |.|


class TestOperations:
    def test_transpose(self):
        a = small()
        np.testing.assert_allclose(a.transpose().to_dense(), a.to_dense().T)

    def test_matvec_matches_dense(self, rng):
        a = laplacian_2d(5)
        x = rng.standard_normal(a.n)
        np.testing.assert_allclose(a.matvec(x), a.to_dense() @ x)

    def test_matvec_block(self, rng):
        a = laplacian_2d(4)
        x = rng.standard_normal((a.n, 3))
        np.testing.assert_allclose(a.matvec(x), a.to_dense() @ x)

    def test_rmatvec_matches_dense(self, rng):
        a = small()
        x = rng.standard_normal(3)
        np.testing.assert_allclose(a.rmatvec(x), a.to_dense().T @ x)

    def test_symmetrize_pattern_keeps_values(self):
        a = small()
        s = a.symmetrize_pattern()
        assert s.is_pattern_symmetric()
        np.testing.assert_allclose(s.to_dense(), a.to_dense())
        # (0,1)/(1,0) absent in both; (0,2)/(2,0) both present already
        assert s.nnz >= a.nnz

    def test_symmetrize_pattern_adds_entries(self):
        a = CSCMatrix.from_coo(2, [1], [0], [7.0])
        s = a.symmetrize_pattern()
        assert s.is_pattern_symmetric()
        assert s.nnz == 2
        np.testing.assert_allclose(s.to_dense(), [[0, 0], [7, 0]])

    def test_is_pattern_symmetric(self):
        assert laplacian_2d(3).is_pattern_symmetric()
        assert not CSCMatrix.from_coo(2, [1], [0], [1.0]).is_pattern_symmetric()

    def test_is_symmetric(self):
        assert laplacian_2d(3).is_symmetric()
        a = CSCMatrix.from_coo(2, [0, 1, 0, 1], [0, 0, 1, 1],
                               [1.0, 2.0, 3.0, 1.0])
        assert not a.is_symmetric()

    def test_lower_pattern(self):
        a = laplacian_2d(3)
        low = a.lower_pattern()
        d = low.to_dense()
        assert np.all(np.triu(d, 1) == 0)
        np.testing.assert_allclose(np.tril(a.to_dense()), d)
