"""Tests for the SVD compression kernel."""

import numpy as np
import pytest

from repro.lowrank.svd import svd_compress, svd_compress_lr, svd_truncate
from tests.conftest import random_lowrank


class TestTruncationRule:
    def test_exact_rank_found(self):
        sigma = np.array([1.0, 0.5, 1e-12, 1e-13])
        assert svd_truncate(sigma, 1e-8) == 2

    def test_keep_everything_when_tight(self):
        sigma = np.array([1.0, 0.9, 0.8])
        assert svd_truncate(sigma, 1e-15) == 3

    def test_rank_zero_when_loose(self):
        sigma = np.array([1.0, 0.5])
        assert svd_truncate(sigma, 2.0) == 0

    def test_empty_sigma(self):
        assert svd_truncate(np.array([]), 1e-8) == 0

    def test_zero_matrix(self):
        assert svd_truncate(np.zeros(4), 1e-8) == 0

    def test_tail_criterion_is_frobenius(self):
        # three equal small values: individually below τσ₁ but the tail
        # in Frobenius must be counted together
        sigma = np.array([1.0, 6e-9, 6e-9, 6e-9])
        # tail after rank 1 is sqrt(3)*6e-9 ≈ 1.04e-8 > 1e-8·||A||
        assert svd_truncate(sigma, 1e-8) > 1


class TestCompression:
    @pytest.mark.parametrize("tol", [1e-4, 1e-8, 1e-12])
    def test_error_bound(self, rng, tol):
        a = random_lowrank(rng, 40, 30, 25, decay=0.45)
        lr = svd_compress(a, tol)
        err = np.linalg.norm(a - lr.to_dense()) / np.linalg.norm(a)
        assert err <= tol * 1.01

    def test_u_is_orthonormal(self, rng):
        a = random_lowrank(rng, 30, 30, 12)
        lr = svd_compress(a, 1e-8)
        np.testing.assert_allclose(lr.u.T @ lr.u, np.eye(lr.rank),
                                   atol=1e-12)

    def test_exact_lowrank_matrix_recovered(self, rng):
        u = rng.standard_normal((20, 3))
        v = rng.standard_normal((15, 3))
        lr = svd_compress(u @ v.T, 1e-10)
        assert lr.rank == 3

    def test_max_rank_rejection(self, rng):
        a = rng.standard_normal((20, 20))  # full rank
        assert svd_compress(a, 1e-12, max_rank=5) is None

    def test_zero_matrix(self):
        lr = svd_compress(np.zeros((6, 4)), 1e-8)
        assert lr.rank == 0

    def test_empty_dimension(self):
        lr = svd_compress(np.zeros((0, 4)), 1e-8)
        assert lr.shape == (0, 4)

    def test_gesdd_failure_falls_back_to_gesvd(self, rng, monkeypatch):
        """When the divide-and-conquer driver does not converge, the
        QR-iteration driver is tried before giving up."""
        import repro.lowrank.svd as svdmod

        real_svd = svdmod.sla.svd
        drivers = []

        def flaky(a, **kw):
            drivers.append(kw.get("lapack_driver"))
            if kw.get("lapack_driver") == "gesdd":
                raise np.linalg.LinAlgError("SVD did not converge")
            return real_svd(a, **kw)

        monkeypatch.setattr(svdmod.sla, "svd", flaky)
        a = random_lowrank(rng, 30, 20, 10, decay=0.4)
        lr = svd_compress(a, 1e-8)
        assert drivers == ["gesdd", "gesvd"]
        err = np.linalg.norm(a - lr.to_dense()) / np.linalg.norm(a)
        assert err <= 1e-8 * 1.01

    def test_double_driver_failure_propagates(self, rng, monkeypatch):
        import repro.lowrank.svd as svdmod

        def broken(a, **kw):
            raise np.linalg.LinAlgError("SVD did not converge")

        monkeypatch.setattr(svdmod.sla, "svd", broken)
        with pytest.raises(np.linalg.LinAlgError):
            svd_compress(rng.standard_normal((12, 10)), 1e-8)

    def test_compress_block_keeps_dense_on_kernel_failure(self, rng,
                                                          monkeypatch):
        """compress_block turns a LinAlgError into a keep-dense verdict
        (and records it on the telemetry bus when one is attached)."""
        import repro.lowrank.svd as svdmod
        from repro.lowrank.kernels import compress_block
        from repro.runtime.stats import KernelStats
        from repro.runtime.telemetry import Telemetry

        def broken(a, **kw):
            raise np.linalg.LinAlgError("SVD did not converge")

        monkeypatch.setattr(svdmod.sla, "svd", broken)
        tele = Telemetry()
        stats = KernelStats(telemetry=tele)
        out = compress_block(rng.standard_normal((12, 10)), 1e-8,
                             kernel="svd", stats=stats)
        assert out is None
        assert "recovery_compress_failure" in tele.snapshot()["counters"]

    def test_compress_block_unknown_kernel_still_raises(self, rng):
        from repro.lowrank.kernels import compress_block

        with pytest.raises(ValueError, match="unknown kernel"):
            compress_block(rng.standard_normal((4, 4)), 1e-8,
                           kernel="nope")

    def test_smaller_tolerance_larger_rank(self, rng):
        a = random_lowrank(rng, 40, 40, 30, decay=0.6)
        r4 = svd_compress(a, 1e-4).rank
        r8 = svd_compress(a, 1e-8).rank
        r12 = svd_compress(a, 1e-12).rank
        assert r4 <= r8 <= r12


class TestRecompressLR:
    def test_retruncates_factored_form(self, rng):
        a = random_lowrank(rng, 25, 20, 15, decay=0.3)
        # a sloppy high-rank factorization of a
        u0 = np.hstack([a, np.zeros((25, 5))])
        v0 = np.vstack([np.eye(20), np.zeros((5, 20))]).T
        u, v = svd_compress_lr(u0, v0, 1e-8)
        err = np.linalg.norm(a - u @ v.T) / np.linalg.norm(a)
        assert err <= 1e-8 * 1.1
        assert u.shape[1] < 25

    def test_rank_zero_input(self):
        u, v = svd_compress_lr(np.zeros((4, 0)), np.zeros((3, 0)), 1e-8)
        assert u.shape == (4, 0)

    def test_output_u_orthonormal(self, rng):
        a = random_lowrank(rng, 20, 18, 10, decay=0.4)
        u0 = a.copy()
        v0 = np.eye(18)
        u, v = svd_compress_lr(u0, v0, 1e-8)
        np.testing.assert_allclose(u.T @ u, np.eye(u.shape[1]), atol=1e-12)
