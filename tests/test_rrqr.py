"""Tests for the RRQR compression kernel (both implementations)."""

import numpy as np
import pytest

from repro.lowrank.rrqr import rrqr, rrqr_compress, rrqr_lapack
from tests.conftest import random_lowrank

IMPLS = {"householder": rrqr, "lapack": rrqr_lapack}


@pytest.mark.parametrize("impl", sorted(IMPLS))
class TestBothImplementations:
    @pytest.mark.parametrize("tol", [1e-4, 1e-8, 1e-12])
    def test_error_bound(self, rng, impl, tol):
        a = random_lowrank(rng, 40, 30, 25, decay=0.45)
        res = IMPLS[impl](a, tol)
        assert res.converged
        approx = res.q @ res.r
        err = np.linalg.norm(a[:, res.jpvt] - approx) / np.linalg.norm(a)
        assert err <= tol * 1.01

    def test_q_orthonormal(self, rng, impl):
        a = random_lowrank(rng, 30, 25, 10)
        res = IMPLS[impl](a, 1e-8)
        r = res.q.shape[1]
        np.testing.assert_allclose(res.q.T @ res.q, np.eye(r), atol=1e-12)

    def test_jpvt_is_permutation(self, rng, impl):
        a = random_lowrank(rng, 20, 16, 8)
        res = IMPLS[impl](a, 1e-10)
        assert sorted(res.jpvt.tolist()) == list(range(16))

    def test_exact_rank_revealed(self, rng, impl):
        u = rng.standard_normal((30, 4))
        v = rng.standard_normal((20, 4))
        res = IMPLS[impl](u @ v.T, 1e-10)
        assert res.q.shape[1] == 4

    def test_max_rank_rejection(self, rng, impl):
        a = rng.standard_normal((16, 16))
        res = IMPLS[impl](a, 1e-14, max_rank=4)
        assert not res.converged

    def test_zero_matrix(self, impl):
        res = IMPLS[impl](np.zeros((5, 4)), 1e-8)
        assert res.converged
        assert res.q.shape[1] == 0

    def test_full_rank_small_matrix_exact(self, rng, impl):
        a = rng.standard_normal((6, 6))
        res = IMPLS[impl](a, 1e-15)
        assert res.converged
        np.testing.assert_allclose(res.q @ res.r, a[:, res.jpvt],
                                   atol=1e-12)


class TestEarlyExit:
    """The property Table 1 leans on: the Householder implementation stops
    after ~rank steps, not min(m, n)."""

    def test_rank_steps_only(self, rng):
        a = random_lowrank(rng, 200, 100, 5, decay=0.1)
        res = rrqr(a, 1e-8)
        # revealed rank must be near 5, far below min(m, n) = 100
        assert res.q.shape[1] <= 8

    def test_work_scales_with_rank_not_size(self, rng):
        """Doubling n at fixed rank must not change the revealed rank, and
        the Q factor stays skinny (the Θ(mnr) claim)."""
        for n in (50, 100, 200):
            a = random_lowrank(rng, 60, n, 6, decay=0.2)
            res = rrqr(a, 1e-8)
            assert res.q.shape[1] <= 9


class TestCompressWrapper:
    @pytest.mark.parametrize("impl", ["householder", "lapack"])
    def test_compress_undoes_permutation(self, rng, impl):
        a = random_lowrank(rng, 30, 24, 10, decay=0.4)
        lr = rrqr_compress(a, 1e-8, impl=impl)
        err = np.linalg.norm(a - lr.to_dense()) / np.linalg.norm(a)
        assert err <= 1e-8 * 1.05

    def test_compress_cap_returns_none(self, rng):
        a = rng.standard_normal((12, 12))
        assert rrqr_compress(a, 1e-14, max_rank=3) is None

    def test_compress_empty(self):
        lr = rrqr_compress(np.zeros((0, 5)), 1e-8)
        assert lr.shape == (0, 5)

    def test_rank_monotone_in_tolerance(self, rng):
        a = random_lowrank(rng, 40, 40, 30, decay=0.6)
        ranks = [rrqr_compress(a, tol).rank for tol in (1e-2, 1e-6, 1e-10)]
        assert ranks == sorted(ranks)

    def test_svd_rank_not_larger_than_rrqr(self, rng):
        """Paper §3.1: 'for a given tolerance, SVD returns lower ranks'."""
        from repro.lowrank.svd import svd_compress
        a = random_lowrank(rng, 50, 40, 30, decay=0.7)
        for tol in (1e-4, 1e-8):
            r_svd = svd_compress(a, tol).rank
            r_rrqr = rrqr_compress(a, tol).rank
            assert r_svd <= r_rrqr + 1


class TestImplementationAgreement:
    def test_same_rank_revealed(self, rng):
        for _ in range(5):
            a = random_lowrank(rng, 35, 28,
                               int(rng.integers(3, 20)), decay=0.35)
            r1 = rrqr(a, 1e-8).q.shape[1]
            r2 = rrqr_lapack(a, 1e-8).q.shape[1]
            assert abs(r1 - r2) <= 1


class TestDtypePreservation:
    """The float32 path must stay float32 end-to-end (no float64 workspaces).

    Regression test for the dtype-unaware workspaces solverlint's
    dtype-literal-promotion rule caught: ``w``, ``vs``/``taus``, ``r_mat``
    and ``_form_q``'s accumulator all allocated float64 regardless of the
    input dtype, silently doubling memory traffic and destroying the
    mixed-precision storage win on single-precision blocks.
    """

    def _tracking_zeros(self, record):
        real_zeros = np.zeros

        def zeros(*args, **kwargs):
            out = real_zeros(*args, **kwargs)
            record.append(out.dtype)
            return out

        return zeros

    @pytest.mark.parametrize("dtype", [np.float32, np.float64])
    def test_householder_result_dtypes(self, rng, dtype):
        a = random_lowrank(rng, 30, 24, 8).astype(dtype)
        res = rrqr(a, 1e-3)
        assert res.q.dtype == dtype
        assert res.r.dtype == dtype

    def test_no_float64_intermediates_on_float32(self, rng, monkeypatch):
        import importlib
        rrqr_mod = importlib.import_module("repro.lowrank.rrqr")
        a = random_lowrank(rng, 30, 24, 8).astype(np.float32)
        allocated = []
        monkeypatch.setattr(rrqr_mod.np, "zeros",
                            self._tracking_zeros(allocated))
        res = rrqr_mod.rrqr(a, 1e-3)
        assert res.converged
        assert allocated, "tracking hook never fired"
        assert all(dt == np.float32 for dt in allocated), allocated

    def test_compress_preserves_float32(self, rng):
        a = random_lowrank(rng, 30, 24, 6).astype(np.float32)
        for impl in ("householder", "lapack"):
            lr = rrqr_compress(a, 1e-3, impl=impl)
            assert lr.u.dtype == np.float32
            assert lr.v.dtype == np.float32

    def test_integer_input_promotes_once_to_float64(self):
        a = np.arange(12, dtype=np.int64).reshape(4, 3)
        res = rrqr(a, 1e-10)
        assert res.q.dtype == np.float64
        assert res.r.dtype == np.float64
