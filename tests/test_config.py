"""Tests for :mod:`repro.config`."""

import pytest

from repro.config import SolverConfig, STRATEGIES, KERNELS


class TestValidation:
    def test_default_is_valid(self):
        cfg = SolverConfig()
        assert cfg.strategy in STRATEGIES
        assert cfg.kernel in KERNELS

    def test_bad_strategy_rejected(self):
        with pytest.raises(ValueError, match="strategy"):
            SolverConfig(strategy="magic")

    def test_bad_kernel_rejected(self):
        with pytest.raises(ValueError, match="kernel"):
            SolverConfig(kernel="hss")

    def test_bad_factotype_rejected(self):
        with pytest.raises(ValueError, match="factotype"):
            SolverConfig(factotype="qr")

    def test_bad_ordering_rejected(self):
        with pytest.raises(ValueError, match="ordering"):
            SolverConfig(ordering="random")

    @pytest.mark.parametrize("tol", [0.0, 1.0, -1e-8, 2.0])
    def test_bad_tolerance_rejected(self, tol):
        with pytest.raises(ValueError, match="tolerance"):
            SolverConfig(tolerance=tol)

    def test_bad_cmin_rejected(self):
        with pytest.raises(ValueError, match="cmin"):
            SolverConfig(cmin=0)

    def test_negative_frat_rejected(self):
        with pytest.raises(ValueError, match="frat"):
            SolverConfig(frat=-0.1)

    def test_split_min_above_split_size_rejected(self):
        with pytest.raises(ValueError, match="split_min"):
            SolverConfig(split_min=300, split_size=256)

    def test_bad_threads_rejected(self):
        with pytest.raises(ValueError, match="threads"):
            SolverConfig(threads=0)

    @pytest.mark.parametrize("ratio", [0.0, 1.5, -0.25])
    def test_bad_rank_ratio_rejected(self, ratio):
        with pytest.raises(ValueError, match="rank_ratio"):
            SolverConfig(rank_ratio=ratio)


class TestPresets:
    def test_paper_scale_matches_section4(self):
        cfg = SolverConfig.paper_scale()
        assert cfg.cmin == 15
        assert cfg.frat == pytest.approx(0.08)
        assert cfg.split_size == 256
        assert cfg.split_min == 128
        assert cfg.compress_min_width == 128
        assert cfg.compress_min_height == 20

    def test_laptop_scale_is_smaller(self):
        paper = SolverConfig.paper_scale()
        laptop = SolverConfig.laptop_scale()
        assert laptop.split_size < paper.split_size
        assert laptop.compress_min_width < paper.compress_min_width

    def test_presets_accept_overrides(self):
        cfg = SolverConfig.paper_scale(strategy="minimal-memory",
                                       tolerance=1e-4)
        assert cfg.strategy == "minimal-memory"
        assert cfg.tolerance == 1e-4

    def test_with_options_returns_modified_copy(self):
        cfg = SolverConfig()
        other = cfg.with_options(kernel="svd")
        assert other.kernel == "svd"
        assert cfg.kernel == "rrqr"

    def test_config_is_frozen(self):
        cfg = SolverConfig()
        with pytest.raises(Exception):
            cfg.kernel = "svd"


class TestDerivedProperties:
    def test_is_blr(self):
        assert not SolverConfig(strategy="dense").is_blr
        assert SolverConfig(strategy="just-in-time").is_blr
        assert SolverConfig(strategy="minimal-memory").is_blr

    def test_is_symmetric_facto(self):
        assert not SolverConfig(factotype="lu").is_symmetric_facto
        assert SolverConfig(factotype="cholesky").is_symmetric_facto
        assert SolverConfig(factotype="ldlt").is_symmetric_facto
