"""Tests for the SVG chart renderer."""



from repro.analysis.charts import Series, bar_chart, line_chart
from repro.analysis.charts import _nice_ticks


class TestNiceTicks:
    def test_covers_range(self):
        ticks = _nice_ticks(0.0, 3.7)
        assert ticks[0] <= 0.0 + 1e-12
        assert ticks[-1] >= 3.7 - 1e-12

    def test_round_steps(self):
        ticks = _nice_ticks(0.0, 10.0)
        steps = {round(b - a, 9) for a, b in zip(ticks, ticks[1:])}
        assert len(steps) == 1

    def test_degenerate_range(self):
        ticks = _nice_ticks(5.0, 5.0)
        assert len(ticks) >= 1

    def test_tiny_values(self):
        ticks = _nice_ticks(0.0, 1e-7)
        assert ticks[-1] >= 1e-7


class TestBarChart:
    def test_writes_svg(self, tmp_path):
        out = bar_chart(tmp_path / "b.svg", ["a", "b"],
                        [Series("s1", [1.0, 2.0])])
        text = out.read_text()
        assert text.startswith("<svg")
        assert text.rstrip().endswith("</svg>")

    def test_one_bar_per_value(self, tmp_path):
        out = bar_chart(tmp_path / "b.svg", ["a", "b", "c"],
                        [Series("s1", [1, 2, 3]), Series("s2", [3, 2, 1])])
        text = out.read_text()
        # 6 bars + background + 2 legend swatches
        assert text.count("<rect") == 1 + 6 + 2

    def test_labels_rendered(self, tmp_path):
        out = bar_chart(tmp_path / "b.svg", ["a"],
                        [Series("s", [1.0], labels=["1.2e-08"])])
        assert "1.2e-08" in out.read_text()

    def test_reference_line_dashed(self, tmp_path):
        out = bar_chart(tmp_path / "b.svg", ["a"], [Series("s", [2.0])],
                        reference_line=1.0)
        assert "stroke-dasharray" in out.read_text()

    def test_title_and_ylabel(self, tmp_path):
        out = bar_chart(tmp_path / "b.svg", ["a"], [Series("s", [1.0])],
                        title="My Title", ylabel="ratio")
        text = out.read_text()
        assert "My Title" in text
        assert "ratio" in text

    def test_escapes_markup(self, tmp_path):
        out = bar_chart(tmp_path / "b.svg", ["<cat>"],
                        [Series("a&b", [1.0])])
        text = out.read_text()
        assert "<cat>" not in text
        assert "&lt;cat&gt;" in text


class TestLineChart:
    def test_writes_svg(self, tmp_path):
        out = line_chart(tmp_path / "l.svg", [1, 2, 3],
                         [Series("s", [1.0, 2.0, 1.5])])
        assert out.read_text().startswith("<svg")

    def test_polyline_per_series(self, tmp_path):
        out = line_chart(tmp_path / "l.svg", [1, 2],
                         [Series("a", [1, 2]), Series("b", [2, 1])])
        assert out.read_text().count("<polyline") == 2

    def test_log_scale_ticks(self, tmp_path):
        out = line_chart(tmp_path / "l.svg", [0, 1, 2],
                         [Series("conv", [1.0, 1e-6, 1e-12])], log_y=True)
        text = out.read_text()
        assert "1e-12" in text and "1e0" in text

    def test_none_values_skipped(self, tmp_path):
        out = line_chart(tmp_path / "l.svg", [0, 1, 2],
                         [Series("s", [1.0, None, 3.0])])
        assert out.read_text().count("<circle") == 2

    def test_nonpositive_dropped_on_log_scale(self, tmp_path):
        out = line_chart(tmp_path / "l.svg", [0, 1, 2],
                         [Series("s", [1.0, 0.0, 1e-3])], log_y=True)
        assert out.read_text().count("<circle") == 2

    def test_markers_can_be_disabled(self, tmp_path):
        out = line_chart(tmp_path / "l.svg", [0, 1],
                         [Series("s", [1.0, 2.0])], markers=False)
        assert "<circle" not in out.read_text()


class TestFigureGallery:
    def test_make_figures_runs_from_results(self, tmp_path):
        """End-to-end: the gallery script renders from whatever JSON
        snapshots exist (skipping missing ones gracefully)."""
        import subprocess
        import sys
        from pathlib import Path

        script = (Path(__file__).resolve().parents[1] / "benchmarks"
                  / "make_figures.py")
        proc = subprocess.run(
            [sys.executable, str(script), str(tmp_path)],
            capture_output=True, text=True, timeout=300,
        )
        assert proc.returncode == 0, proc.stderr[-1500:]
        # fig1 is always recomputed, so at least one SVG must exist
        assert (tmp_path / "fig1_structure.svg").exists()
