"""Numerical stress tests: ill conditioning, extreme scales, robustness.

These push the solver outside the comfortable diagonally-dominant regime of
the generator suite and check that accuracy degrades gracefully and that
refinement recovers it — the behaviour a production solver must have.
"""

import numpy as np
import pytest

from repro.core.solver import Solver
from repro.sparse.csc import CSCMatrix
from repro.sparse.generators import heterogeneous_poisson_3d, laplacian_2d
from repro.sparse.scaling import equilibrate
from tests.conftest import tiny_blr_config


class TestConditionSweep:
    @pytest.mark.parametrize("contrast", [1e2, 1e5, 1e8])
    def test_refinement_rescues_ill_conditioning(self, contrast, rng):
        """As the coefficient contrast (hence κ) grows, the direct solve
        loses digits but refinement still reaches near machine precision."""
        a = heterogeneous_poisson_3d(5, contrast=contrast, seed=3)
        s = Solver(a, tiny_blr_config(strategy="dense",
                                      factotype="cholesky"))
        s.factorize()
        b = rng.standard_normal(a.n)
        res = s.refine(b, tol=1e-12, maxiter=20)
        assert res.backward_error <= 1e-10, contrast

    def test_condest_tracks_contrast(self):
        """The condition estimate must grow monotonically with contrast."""
        ests = []
        for contrast in (1e1, 1e4, 1e7):
            a = heterogeneous_poisson_3d(4, contrast=contrast, seed=3)
            s = Solver(a, tiny_blr_config(strategy="dense"))
            ests.append(s.condest())
        assert ests[0] < ests[1] < ests[2]

    def test_equilibration_reduces_condition(self):
        a = heterogeneous_poisson_3d(4, contrast=1e8, seed=3)
        scaled, _ = equilibrate(a)
        k_raw = Solver(a, tiny_blr_config(strategy="dense")).condest()
        k_scaled = Solver(scaled, tiny_blr_config(strategy="dense")).condest()
        assert k_scaled < k_raw


class TestExtremeScales:
    @pytest.mark.parametrize("scale", [1e-30, 1e+30])
    def test_uniformly_scaled_system(self, scale, rng):
        """A global scale factor must not change the computed solution
        direction (backward error is scale-invariant)."""
        a = laplacian_2d(5)
        scaled = CSCMatrix(a.n, a.colptr, a.rowind, a.values * scale)
        s = Solver(scaled, tiny_blr_config(strategy="dense"))
        s.factorize()
        b = rng.standard_normal(a.n)
        x = s.solve(b)
        assert s.backward_error(x, b) <= 1e-10

    def test_blr_on_scaled_system(self, rng):
        """Relative tolerances make compression scale-invariant too."""
        from repro.sparse.generators import laplacian_3d
        a = laplacian_3d(8)
        ups = CSCMatrix(a.n, a.colptr, a.rowind, a.values * 1e12)
        errs = {}
        for name, mat in (("unit", a), ("scaled", ups)):
            cfg = tiny_blr_config(strategy="minimal-memory", tolerance=1e-6)
            s = Solver(mat, cfg)
            st = s.factorize()
            b = rng.standard_normal(a.n)
            errs[name] = (s.backward_error(s.solve(b), b),
                          st.nblocks_compressed)
        # identical compression decisions, comparable accuracy
        assert errs["unit"][1] == errs["scaled"][1]
        assert abs(np.log10(max(errs["unit"][0], 1e-300))
                   - np.log10(max(errs["scaled"][0], 1e-300))) < 2


class TestPivotThreshold:
    def test_larger_threshold_more_perturbations(self):
        """Raising the static-pivot floor perturbs more pivots on a
        near-singular system, and refinement absorbs the perturbation."""
        d = laplacian_2d(5).to_dense()
        d[7, 7] = 1e-13  # destroy one pivot
        a = CSCMatrix.from_dense((d + d.T) / 2)
        counts = {}
        for thresh in (1e-14, 1e-6):
            s = Solver(a, tiny_blr_config(strategy="dense",
                                          pivot_threshold=thresh))
            s.factorize()
            counts[thresh] = s.factor.nperturbed
        assert counts[1e-6] >= counts[1e-14]

    def test_factorization_never_produces_nan(self, rng):
        """Even on an exactly singular matrix, static pivoting keeps the
        factors finite (the solve is then a pseudo-answer refinement can
        work with)."""
        d = laplacian_2d(4).to_dense()
        d[:, 3] = d[:, 2]
        d[3, :] = d[2, :]  # duplicated row/col: singular
        a = CSCMatrix.from_dense((d + d.T) / 2)
        s = Solver(a, tiny_blr_config(strategy="dense",
                                      pivot_threshold=1e-10))
        s.factorize()
        for nc in s.factor.cblks:
            assert np.isfinite(nc.diag).all()


class TestZeroAndTrivialRhs:
    def test_zero_rhs_gives_zero(self):
        from repro.sparse.generators import laplacian_3d
        a = laplacian_3d(4)
        s = Solver(a, tiny_blr_config(strategy="minimal-memory"))
        x = s.solve(np.zeros(a.n))
        np.testing.assert_allclose(x, 0, atol=1e-12)

    def test_rhs_in_column_space_exact(self, rng):
        a = laplacian_2d(5)
        s = Solver(a, tiny_blr_config(strategy="dense"))
        x_true = rng.standard_normal(a.n)
        b = a.matvec(x_true)
        x = s.solve(b)
        np.testing.assert_allclose(x, x_true, atol=1e-9)
