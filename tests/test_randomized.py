"""Tests for the randomized SVD compression kernel (rsvd)."""

import numpy as np
import pytest

from repro.core.solver import Solver
from repro.lowrank.randomized import rsvd_compress
from repro.sparse.generators import laplacian_3d
from tests.conftest import random_lowrank, tiny_blr_config


class TestRsvdKernel:
    @pytest.mark.parametrize("tol", [1e-4, 1e-8, 1e-12])
    def test_error_bound(self, rng, tol):
        a = random_lowrank(rng, 60, 45, 25, decay=0.45)
        lr = rsvd_compress(a, tol)
        err = np.linalg.norm(a - lr.to_dense()) / np.linalg.norm(a)
        assert err <= tol * 1.05

    def test_u_orthonormal(self, rng):
        a = random_lowrank(rng, 40, 30, 12)
        lr = rsvd_compress(a, 1e-8)
        np.testing.assert_allclose(lr.u.T @ lr.u, np.eye(lr.rank),
                                   atol=1e-10)

    def test_rank_close_to_svd(self, rng):
        from repro.lowrank.svd import svd_compress
        a = random_lowrank(rng, 50, 40, 20, decay=0.4)
        r_svd = svd_compress(a, 1e-8).rank
        r_rand = rsvd_compress(a, 1e-8).rank
        assert r_rand <= r_svd + 4  # oversampling slack only

    def test_deterministic(self, rng):
        a = random_lowrank(rng, 30, 25, 8)
        lr1 = rsvd_compress(a, 1e-8)
        lr2 = rsvd_compress(a, 1e-8)
        np.testing.assert_array_equal(lr1.u, lr2.u)
        np.testing.assert_array_equal(lr1.v, lr2.v)

    def test_zero_matrix(self):
        lr = rsvd_compress(np.zeros((10, 8)), 1e-8)
        assert lr.rank == 0

    def test_empty_dimension(self):
        lr = rsvd_compress(np.zeros((0, 5)), 1e-8)
        assert lr.shape == (0, 5)

    def test_max_rank_rejection(self, rng):
        a = rng.standard_normal((24, 24))
        assert rsvd_compress(a, 1e-13, max_rank=4) is None

    def test_exact_lowrank_recovered(self, rng):
        u = rng.standard_normal((30, 3))
        v = rng.standard_normal((25, 3))
        lr = rsvd_compress(u @ v.T, 1e-10)
        assert lr.rank == 3


class TestRsvdInSolver:
    @pytest.mark.parametrize("strategy", ["just-in-time", "minimal-memory"])
    def test_end_to_end(self, strategy, rng):
        a = laplacian_3d(8)
        cfg = tiny_blr_config(strategy=strategy, kernel="rsvd",
                              tolerance=1e-6)
        s = Solver(a, cfg)
        stats = s.factorize()
        b = rng.standard_normal(a.n)
        assert s.backward_error(s.solve(b), b) <= 1e-3
        assert stats.nblocks_compressed > 0

    def test_memory_comparable_to_rrqr(self, rng):
        a = laplacian_3d(8)
        ratios = {}
        for kernel in ("rrqr", "rsvd"):
            cfg = tiny_blr_config(strategy="minimal-memory", kernel=kernel,
                                  tolerance=1e-4)
            ratios[kernel] = Solver(a, cfg).factorize().memory_ratio
        assert abs(ratios["rsvd"] - ratios["rrqr"]) < 0.1

    def test_config_accepts_rsvd(self):
        from repro.config import SolverConfig
        cfg = SolverConfig(kernel="rsvd")
        assert cfg.kernel == "rsvd"
