"""Supplementary edge-case tests filling coverage gaps."""

import numpy as np
import pytest

from repro.core.solver import Solver
from repro.sparse.csc import CSCMatrix
from repro.sparse.generators import laplacian_1d, laplacian_2d, laplacian_3d
from tests.conftest import random_lowrank, tiny_blr_config


class TestTinySystems:
    def test_one_by_one(self):
        a = CSCMatrix.from_coo(1, [0], [0], [4.0])
        s = Solver(a, tiny_blr_config(strategy="dense"))
        x = s.solve(np.array([8.0]))
        np.testing.assert_allclose(x, [2.0])

    def test_two_by_two(self):
        a = CSCMatrix.from_dense(np.array([[4.0, 1.0], [1.0, 3.0]]))
        for strategy in ("dense", "just-in-time", "minimal-memory"):
            s = Solver(a, tiny_blr_config(strategy=strategy))
            x = s.solve(np.array([1.0, 2.0]))
            assert s.backward_error(x, np.array([1.0, 2.0])) <= 1e-12

    def test_diagonal_matrix(self):
        a = CSCMatrix.from_coo(5, range(5), range(5),
                               [2.0, 3.0, 4.0, 5.0, 6.0])
        s = Solver(a, tiny_blr_config(strategy="dense"))
        b = np.arange(1.0, 6.0)
        np.testing.assert_allclose(s.solve(b), b / np.array([2, 3, 4, 5, 6]))

    def test_tridiagonal_chain(self):
        a = laplacian_1d(50)
        s = Solver(a, tiny_blr_config(strategy="minimal-memory"))
        b = np.ones(50)
        assert s.backward_error(s.solve(b), b) <= 1e-8

    def test_all_strategies_n_equals_cmin(self):
        """Problems smaller than cmin produce a single leaf supernode."""
        a = laplacian_2d(2)  # n = 4 < cmin = 8
        for strategy in ("dense", "just-in-time", "minimal-memory"):
            s = Solver(a, tiny_blr_config(strategy=strategy))
            s.factorize()
            assert s.symbolic.ncblk >= 1
            b = np.ones(4)
            assert s.backward_error(s.solve(b), b) <= 1e-12


class TestGmresRestart:
    def test_multiple_restart_cycles(self, rng):
        """restart < iterations forces several Arnoldi cycles."""
        from repro.core.refinement import gmres
        a = laplacian_2d(6)
        b = rng.standard_normal(a.n)
        res = gmres(a, b, tol=1e-10, maxiter=300, restart=5)
        assert res.converged
        assert res.iterations > 5  # really took more than one cycle

    def test_history_length_tracks_iterations(self, rng):
        from repro.core.refinement import gmres
        a = laplacian_2d(4)
        b = rng.standard_normal(a.n)
        res = gmres(a, b, tol=1e-12, maxiter=50, restart=10)
        # initial entry + one per iteration (restart bookkeeping may merge
        # the last entry of a cycle with the true-residual recomputation)
        assert len(res.history) >= res.iterations


class TestRrqrNormRef:
    def test_norm_ref_forces_rank_zero(self, rng):
        """A tiny matrix truncates to rank 0 when the reference scale is
        much larger (the cancellation case of the extend-add)."""
        from repro.lowrank.rrqr import rrqr, rrqr_lapack
        tiny = 1e-14 * random_lowrank(rng, 10, 8, 3)
        for impl in (rrqr, rrqr_lapack):
            res = impl(tiny, 1e-8, norm_ref=1.0)
            assert res.converged
            assert res.q.shape[1] == 0

    def test_norm_ref_none_is_relative(self, rng):
        from repro.lowrank.rrqr import rrqr
        tiny = 1e-14 * random_lowrank(rng, 10, 8, 3)
        res = rrqr(tiny, 1e-8)  # relative to its own norm: keeps rank
        assert res.q.shape[1] > 0


class TestAcaFullRankBreak:
    def test_full_rank_block_with_no_cap(self, rng):
        """ACA on a numerically full-rank block without a cap terminates
        with an exact (full-rank) cross basis."""
        from repro.lowrank.aca import aca_compress
        a = rng.standard_normal((8, 8))
        lr = aca_compress(a, 1e-14)
        assert lr is not None
        np.testing.assert_allclose(lr.to_dense(), a, atol=1e-10)


class TestSymbolicBlockHelpers:
    def test_rows_helper(self):
        from repro.symbolic.structure import SymbolicBlock
        b = SymbolicBlock(first_row=5, nrows=3, facing=0)
        np.testing.assert_array_equal(b.rows(), [5, 6, 7])
        assert b.end_row == 8


class TestMemoryInvariants:
    @pytest.mark.parametrize("strategy", ["dense", "just-in-time",
                                          "minimal-memory"])
    def test_tracker_matches_factor_bytes_at_end(self, strategy):
        """After factorization the tracked current bytes equal the factor
        storage (nothing leaked, nothing double-counted)."""
        a = laplacian_3d(6)
        cfg = tiny_blr_config(strategy=strategy, tolerance=1e-6)
        s = Solver(a, cfg)
        s.factorize()
        assert s.factor.tracker.current == s.factor.factor_nbytes()

    def test_left_looking_tracker_consistent(self):
        a = laplacian_3d(6)
        cfg = tiny_blr_config(strategy="just-in-time", tolerance=1e-6,
                              left_looking=True)
        s = Solver(a, cfg)
        s.factorize()
        assert s.factor.tracker.current == s.factor.factor_nbytes()


class TestCliRandomRhs:
    def test_random_rhs_flag(self, capsys):
        from repro.cli import main
        rc = main(["solve", "--generate", "lap3d:4", "--rhs", "random",
                   "--seed", "7"])
        assert rc == 0


class TestMultiRhsEdges:
    """Degenerate panel shapes and layouts through the blocked solve."""

    def test_empty_panel(self, rng):
        a = laplacian_2d(4)
        s = Solver(a, tiny_blr_config())
        s.factorize()
        b = np.zeros((a.n, 0))
        x = s.solve(b)
        assert x.shape == (a.n, 0)
        x = s.solve(b, refine=True)
        assert x.shape == (a.n, 0)

    def test_k1_panel_equals_vector_bitwise(self, rng):
        a = laplacian_3d(5)
        s = Solver(a, tiny_blr_config(strategy="minimal-memory",
                                      tolerance=1e-8))
        s.factorize()
        b = rng.standard_normal(a.n)
        x_vec = s.solve(b)
        x_panel = s.solve(b[:, None])
        assert x_vec.ndim == 1 and x_panel.shape == (a.n, 1)
        np.testing.assert_array_equal(x_panel[:, 0], x_vec)

    def test_fortran_order_rhs_bitwise(self, rng):
        a = laplacian_3d(5)
        s = Solver(a, tiny_blr_config(strategy="just-in-time",
                                      tolerance=1e-8))
        s.factorize()
        b = rng.standard_normal((a.n, 4))
        x_c = s.solve(b)
        x_f = s.solve(np.asfortranarray(b))
        np.testing.assert_array_equal(x_c, x_f)

    def test_noncontiguous_rhs_bitwise(self, rng):
        a = laplacian_3d(5)
        s = Solver(a, tiny_blr_config(strategy="just-in-time",
                                      tolerance=1e-8))
        s.factorize()
        wide = rng.standard_normal((a.n, 8))
        view = wide[:, ::2]                      # stride-2 view, k=4
        assert not view.flags["C_CONTIGUOUS"]
        x_view = s.solve(view)
        x_copy = s.solve(np.ascontiguousarray(view))
        np.testing.assert_array_equal(x_view, x_copy)

    def test_complex_panel_against_real_factorization_raises(self, rng):
        a = laplacian_2d(4)
        s = Solver(a, tiny_blr_config())
        s.factorize()
        b = rng.standard_normal((a.n, 2)).astype(np.complex128)
        with pytest.raises(ValueError, match="complex right-hand side"):
            s.solve(b)

    def test_refined_panel_columns_converge(self, rng):
        a = laplacian_3d(5)
        s = Solver(a, tiny_blr_config(strategy="minimal-memory",
                                      tolerance=1e-4))
        s.factorize()
        b = rng.standard_normal((a.n, 3))
        x = s.solve(b, refine=True, refine_tol=1e-12)
        for j in range(3):
            rj = np.linalg.norm(a.matvec(x[:, j]) - b[:, j])
            assert rj / np.linalg.norm(b[:, j]) <= 1e-10
