"""Experiment fig6 — Minimal Memory factor-size gains (paper Figure 6).

Paper artifact: for the six matrices, the ratio ``memory(BLR factors) /
memory(dense factors)`` under the Minimal Memory scenario, for SVD and
RRQR kernels at τ ∈ {1e-4, 1e-8, 1e-12}, with backward errors on top.

Shape expectations checked:

* every ratio is ≤ 1 (compression never loses memory — the rank cap
  guarantees it);
* SVD compresses at least as well as RRQR at equal τ;
* ratios grow as τ shrinks (1e-12 keeps larger ranks than 1e-4);
* the easy matrices (lap/atmosmodj) compress better than the hard ones
  (audi/geo1438) — the paper's compressibility spectrum.
"""

from __future__ import annotations

import numpy as np

from common import (
    TOLERANCES,
    bench_config,
    bench_scale,
    build_suite,
    print_header,
    run_solver,
    save_json,
)


def run_experiment(scale: str) -> dict:
    suite = build_suite(scale)
    out = {"scale": scale, "matrices": {}}
    for name, (a, factotype) in suite.items():
        rows = {}
        for kernel in ("rrqr", "svd"):
            for tol in TOLERANCES:
                cfg = bench_config(scale, strategy="minimal-memory",
                                   kernel=kernel, tolerance=tol,
                                   factotype=factotype)
                rows[f"{kernel}@{tol:.0e}"] = run_solver(a, cfg)
        out["matrices"][name] = rows
    return out


def print_report(res: dict) -> None:
    print_header("fig6: Minimal Memory factor size / dense factor size")
    header = f"{'matrix':>12}"
    for tol in TOLERANCES:
        header += f" | {'rrqr ' + format(tol, '.0e'):>11}" \
                  f" {'svd ' + format(tol, '.0e'):>11}"
    print(header)
    for name, rows in res["matrices"].items():
        line = f"{name:>12}"
        for tol in TOLERANCES:
            rr = rows[f"rrqr@{tol:.0e}"]["memory_ratio"]
            sv = rows[f"svd@{tol:.0e}"]["memory_ratio"]
            line += f" | {rr:11.3f} {sv:11.3f}"
        print(line)
    print("\nbackward errors (rrqr):")
    for name, rows in res["matrices"].items():
        errs = " ".join(f"{rows[f'rrqr@{t:.0e}']['backward_error']:9.1e}"
                        for t in TOLERANCES)
        print(f"{name:>12} {errs}")


def check_shape(res: dict) -> None:
    for name, rows in res["matrices"].items():
        for key, r in rows.items():
            assert r["memory_ratio"] <= 1.0 + 1e-9, (name, key)
        for tol in TOLERANCES:
            sv = rows[f"svd@{tol:.0e}"]["memory_ratio"]
            rr = rows[f"rrqr@{tol:.0e}"]["memory_ratio"]
            assert sv <= rr * 1.05, (name, tol)
        # monotone in tolerance for each kernel
        for kernel in ("rrqr", "svd"):
            ratios = [rows[f"{kernel}@{t:.0e}"]["memory_ratio"]
                      for t in TOLERANCES]
            assert ratios[0] <= ratios[1] * 1.02 <= ratios[2] * 1.05, \
                (name, kernel, ratios)


def test_fig6_memory(benchmark):
    scale = bench_scale()
    res = benchmark.pedantic(lambda: run_experiment(scale), rounds=1,
                             iterations=1)
    print_report(res)
    save_json("fig6_memory", res)
    check_shape(res)


if __name__ == "__main__":
    import sys

    scale = sys.argv[1] if len(sys.argv) > 1 else bench_scale("standard")
    res = run_experiment(scale)
    print_report(res)
    save_json("fig6_memory", res)
    check_shape(res)
