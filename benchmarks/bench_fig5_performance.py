"""Experiment fig5 — performance of JIT and MM vs the dense solver.

Paper artifact: Figure 5 plots, for six matrices and three tolerances, the
ratio ``time(BLR) / time(PaStiX dense)`` for (a) Just-In-Time/RRQR and
(b) Minimal Memory/RRQR, with the backward error printed above each bar.

At laptop scale the Python per-block overhead hides kernel-level wall-clock
wins, so next to the wall-clock ratio we report the *flop* ratio — the
machine-independent cost our instrumented kernels count, which is the
quantity the paper's MKL-backed kernels translate into time.  Shape
expectations (checked loosely):

* JIT flop ratio < 1 and decreasing with looser tolerance (paper: up to
  3.3x faster at 1e-4);
* MM slower than dense (paper: ~1.8x average loss), with tolerance having
  a weaker effect (Figure 5b);
* backward errors track τ.
"""

from __future__ import annotations

import numpy as np

from common import (
    TOLERANCES,
    bench_config,
    bench_scale,
    build_suite,
    print_header,
    run_solver,
    save_json,
)


def run_experiment(scale: str, strategies=("just-in-time",
                                           "minimal-memory")) -> dict:
    suite = build_suite(scale)
    out = {"scale": scale, "matrices": {}}
    for name, (a, factotype) in suite.items():
        dense_cfg = bench_config(scale, strategy="dense",
                                 factotype=factotype)
        dense = run_solver(a, dense_cfg)
        rows = {"dense": dense}
        for strategy in strategies:
            for tol in TOLERANCES:
                cfg = bench_config(scale, strategy=strategy, kernel="rrqr",
                                   tolerance=tol, factotype=factotype)
                rows[f"{strategy}@{tol:.0e}"] = run_solver(a, cfg)
        out["matrices"][name] = rows
    return out


def print_report(res: dict) -> None:
    for strategy, fig in (("just-in-time", "5(a)"),
                          ("minimal-memory", "5(b)")):
        print_header(f"fig{fig}: {strategy}/RRQR vs dense "
                     f"(time ratio | flop ratio | backward error)")
        header = f"{'matrix':>12}"
        for tol in TOLERANCES:
            header += f" | {'tau=' + format(tol, '.0e'):>24}"
        print(header)
        for name, rows in res["matrices"].items():
            dense = rows["dense"]
            line = f"{name:>12}"
            for tol in TOLERANCES:
                r = rows[f"{strategy}@{tol:.0e}"]
                tr = r["facto_time"] / dense["facto_time"]
                fr = r["total_flops"] / dense["total_flops"]
                line += (f" | {tr:5.2f}x {fr:5.2f}f "
                         f"{r['backward_error']:9.1e}")
            print(line)


def check_shape(res: dict) -> None:
    jit_flop_by_tol = {tol: [] for tol in TOLERANCES}
    mm_time_ratios = []
    for name, rows in res["matrices"].items():
        dense = rows["dense"]
        for tol in TOLERANCES:
            jit = rows[f"just-in-time@{tol:.0e}"]
            mm = rows[f"minimal-memory@{tol:.0e}"]
            jit_flop_by_tol[tol].append(jit["total_flops"]
                                        / dense["total_flops"])
            mm_time_ratios.append(mm["facto_time"] / dense["facto_time"])
            # backward error tracks tau (with BLR error-accumulation slack)
            assert jit["backward_error"] < tol * 1e4
            assert mm["backward_error"] < tol * 1e4
    # the paper's speedup source: on compressible matrices JIT beats the
    # dense solver in update flops, most clearly at the loosest tolerance
    loosest, tightest = max(TOLERANCES), min(TOLERANCES)
    assert min(jit_flop_by_tol[loosest]) < 1.0, \
        "no matrix benefits from JIT compression at the loosest tolerance"
    # looser tolerance => cheaper JIT factorization (Figure 5a trend)
    assert float(np.mean(jit_flop_by_tol[loosest])) <= \
        float(np.mean(jit_flop_by_tol[tightest])) + 0.05
    # MM is slower than dense (paper: average ~1.8x loss)
    assert float(np.mean(mm_time_ratios)) > 1.0


def test_fig5_performance(benchmark):
    scale = bench_scale()
    res = benchmark.pedantic(lambda: run_experiment(scale), rounds=1,
                             iterations=1)
    print_report(res)
    save_json("fig5_performance", res)
    check_shape(res)


if __name__ == "__main__":
    import sys

    scale = sys.argv[1] if len(sys.argv) > 1 else bench_scale("standard")
    res = run_experiment(scale)
    print_report(res)
    save_json("fig5_performance", res)
    check_shape(res)
