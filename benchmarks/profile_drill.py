"""CI drill for the causal span profiler (``docs/observability.md``).

One program, four gates:

1. **Tree invariants** — a traced 4-thread factorization (both
   schedulers) and a traced sequential run must each produce a healthy
   span tree (single root, no orphans, containment/ordering respected).
2. **Engine invariance** — the three causal trees must be *identical*
   (edges + attributes; timestamps and thread ids aside).
3. **Bit identity** — the profiled float64 factors must hash
   sha256-identical to an unprofiled run.
4. **Overhead** — profiling must not slow the factorization by more
   than 5% (plus a small absolute epsilon for runner noise).

On success the traced run is exported as Chrome ``about:tracing`` and
speedscope documents for the CI artifact.

Run directly::

    PYTHONPATH=src python benchmarks/profile_drill.py [--grid 10]
"""

from __future__ import annotations

import argparse
import hashlib
import sys
import time
from pathlib import Path
from typing import Any, List, Optional, Tuple

import numpy as np

from repro import Solver, SolverConfig
from repro.analysis.profile import (
    export_chrome_trace,
    export_speedscope,
    phase_rollup,
)
from repro.runtime.spans import SpanProfiler, canonical_tree
from repro.sparse.generators import laplacian_3d

ENGINES: Tuple[Tuple[str, dict], ...] = (
    ("sequential", dict(threads=1)),
    ("threaded-dynamic", dict(threads=4, scheduler="dynamic")),
    ("threaded-static", dict(threads=4, scheduler="static")),
)


def _config(**overrides: Any) -> SolverConfig:
    return SolverConfig.laptop_scale(
        strategy="just-in-time", kernel="rrqr", tolerance=1e-8, **overrides)


def factor_digest(solver: Solver) -> str:
    h = hashlib.sha256()
    for nc in solver.factor.cblks:
        h.update(np.ascontiguousarray(nc.diag).tobytes())
        for i in range(len(nc.sym.off_blocks())):
            blk = nc.lblock(i)
            if hasattr(blk, "u"):
                h.update(np.ascontiguousarray(blk.u).tobytes())
                h.update(np.ascontiguousarray(blk.v).tobytes())
            else:
                h.update(np.ascontiguousarray(blk).tobytes())
    return h.hexdigest()


def profiled_run(a: Any, **overrides: Any) -> Tuple[Solver, SpanProfiler]:
    prof = SpanProfiler()
    solver = Solver(a, _config(profiler=prof, **overrides))
    solver.factorize()
    solver.solve(np.ones(a.n))
    prof.finish()
    return solver, prof


def overhead_bound(a: Any, reps: int = 3) -> Tuple[float, float]:
    """Best-of-``reps`` factorization time with and without the profiler."""

    def best_of(profile: bool, n: int = reps) -> float:
        times: List[float] = []
        for _ in range(n):
            cfg = _config(profiler=SpanProfiler() if profile else None)
            s = Solver(a, cfg)
            s.analyze()
            t0 = time.perf_counter()
            s.factorize()
            times.append(time.perf_counter() - t0)
        return min(times)

    best_of(False, n=1)  # warm the caches
    return best_of(False), best_of(True)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--grid", type=int, default=10,
                        help="laplacian_3d grid size (default 10)")
    parser.add_argument("--outdir", default=".",
                        help="directory for the exported trace artifacts")
    args = parser.parse_args(argv)

    a = laplacian_3d(args.grid)
    print(f"workload: laplacian_3d({args.grid})  n={a.n} nnz={a.nnz}")

    # gates 1-3: invariants, engine invariance, bit identity ------------
    baseline = Solver(a, _config())
    baseline.factorize()
    want_digest = factor_digest(baseline)

    trees = {}
    exported: Optional[SpanProfiler] = None
    for engine, overrides in ENGINES:
        solver, prof = profiled_run(a, **overrides)
        problems = prof.check_invariants()
        if problems:
            for p in problems:
                print(f"  INVARIANT [{engine}]: {p}", file=sys.stderr)
            return 1
        digest = factor_digest(solver)
        if digest != want_digest:
            print(f"  BIT DRIFT [{engine}]: profiled factor digest "
                  f"{digest[:16]} != unprofiled {want_digest[:16]}",
                  file=sys.stderr)
            return 1
        trees[engine] = canonical_tree(prof.events())
        nspans = len(prof.events())
        print(f"  {engine:>16}: {nspans} spans, invariants clean, "
              f"digest {digest[:16]}")
        if engine == "threaded-dynamic":
            exported = prof

    for engine, _ in ENGINES[1:]:
        if trees[engine] != trees["sequential"]:
            print(f"  TREE MISMATCH: {engine} causal tree differs from "
                  f"sequential", file=sys.stderr)
            return 1
    print("  causal trees identical across engines")

    # gate 4: overhead ---------------------------------------------------
    t_off, t_on = overhead_bound(a)
    ratio = t_on / t_off if t_off > 0 else 1.0
    print(f"  overhead: off={t_off:.4f}s on={t_on:.4f}s ({ratio:.3f}x)")
    if t_on > 1.05 * t_off + 0.02:
        print("  OVERHEAD: profiling exceeds the 5% budget",
              file=sys.stderr)
        return 1

    # artifacts ----------------------------------------------------------
    assert exported is not None
    outdir = Path(args.outdir)
    outdir.mkdir(parents=True, exist_ok=True)
    doc = exported.to_json(outdir / "profile_spans.json")
    export_chrome_trace(doc, outdir / "profile_chrome.json")
    export_speedscope(doc, outdir / "profile.speedscope.json")
    roll = phase_rollup(doc)
    print(f"  phases: " + ", ".join(
        f"{name}={slot['time']:.3f}s"
        for name, slot in sorted(roll["phases"].items(),
                                 key=lambda kv: -kv[1]["time"])))
    print(f"  artifacts -> {outdir}/profile_spans.json, "
          f"profile_chrome.json, profile.speedscope.json")
    return 0


if __name__ == "__main__":
    sys.exit(main())
