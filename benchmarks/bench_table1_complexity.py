"""Experiment tab1 — complexity of the update kernels (paper Table 1).

Table 1 gives the main complexity factors of the three update families:

* GEMM (dense):        Θ(mA mB nA)
* LR2GE (Just-In-Time): Θ(mA mB rAB)
* LR2LR (Minimal Memory): Θ(mC (rC + rAB) rC') for RRQR,
                          Θ(mC (rC + rAB)²)    for SVD

We validate the *scaling* empirically: sweep one dimension at a time with
everything else fixed, measure the flops our instrumented kernels charge,
and fit the growth exponent against the model.  The early-exit property of
the Householder RRQR (Θ(m n r), not Θ(m n min(m,n))) is also demonstrated
by timing it at fixed rank and growing size.
"""

from __future__ import annotations

import time

import numpy as np

from common import print_header, save_json

from repro.analysis.complexity import (
    gemm_cost,
    lr2ge_cost,
    lr2lr_cost_rrqr,
    lr2lr_cost_svd,
)
from repro.lowrank.kernels import lr2ge_update, lr2lr_update, lr_product
from repro.lowrank.rrqr import rrqr, rrqr_compress
from repro.runtime.stats import KernelStats


def _lowrank(rng, m, n, r):
    u = np.linalg.qr(rng.standard_normal((m, r)))[0]
    v = rng.standard_normal((n, r))
    return rrqr_compress(u @ v.T, 1e-13)


def growth_exponent(xs, ys):
    """Least-squares slope of log(y) vs log(x)."""
    lx, ly = np.log(np.asarray(xs, float)), np.log(np.asarray(ys, float))
    return float(np.polyfit(lx, ly, 1)[0])


def sweep_lr2ge(rng, sizes=(64, 128, 256, 512), rank=8):
    """LR2GE flops must grow like m² at fixed rank (model Θ(mA mB rAB))."""
    measured, model = [], []
    for m in sizes:
        a = _lowrank(rng, m, 64, rank)
        b = _lowrank(rng, m, 64, rank)
        stats = KernelStats()
        contrib = lr_product(a, b, 1e-10, "rrqr", stats)
        target = rng.standard_normal((m, m))
        lr2ge_update(target, contrib, 0, 0, stats)
        measured.append(stats.total_flops())
        model.append(lr2ge_cost(m, m, 64, rank, rank, contrib.rank))
    return {"sizes": list(sizes), "measured": measured, "model": model,
            "exponent": growth_exponent(sizes, measured)}


def sweep_lr2lr(rng, kernel, sizes=(64, 128, 256, 512), rank=8):
    """LR2LR flops must grow linearly with the *target* size mC."""
    measured, model = [], []
    for m in sizes:
        target = _lowrank(rng, m, m, rank)
        contrib = _lowrank(rng, 48, 48, rank)  # fixed-size contribution
        stats = KernelStats()
        lr2lr_update(target, contrib, 0, 0, 1e-10, kernel, stats=stats)
        measured.append(stats.flop("lr_addition"))
        cost = lr2lr_cost_svd if kernel == "svd" else lr2lr_cost_rrqr
        model.append(cost(m, m, rank, rank, rank))
    return {"sizes": list(sizes), "measured": measured, "model": model,
            "exponent": growth_exponent(sizes, measured)}


def sweep_gemm(sizes=(64, 128, 256, 512)):
    measured = [gemm_cost(m, m, 64) for m in sizes]
    return {"sizes": list(sizes), "measured": measured,
            "exponent": growth_exponent(sizes, measured)}


def sweep_rrqr_early_exit(rng, rank=6, sizes=(64, 128, 256, 512)):
    """Wall-clock of the Householder RRQR at fixed rank: the early exit
    makes it ~linear in n, while a full QR would be quadratic."""
    times = []
    for n in sizes:
        a = _lowrank(rng, n, n, rank).to_dense()
        t0 = time.perf_counter()
        for _ in range(3):
            res = rrqr(a, 1e-8)
        times.append((time.perf_counter() - t0) / 3)
        assert res.q.shape[1] <= rank + 3
    return {"sizes": list(sizes), "seconds": times,
            "exponent": growth_exponent(sizes, times)}


def run_experiment() -> dict:
    rng = np.random.default_rng(0)
    return {
        "gemm": sweep_gemm(),
        "lr2ge": sweep_lr2ge(rng),
        "lr2lr_rrqr": sweep_lr2lr(rng, "rrqr"),
        "lr2lr_svd": sweep_lr2lr(rng, "svd"),
        "rrqr_early_exit": sweep_rrqr_early_exit(rng),
    }


def print_report(res: dict) -> None:
    print_header("tab1: update-kernel complexity scaling (paper Table 1)")
    print(f"{'kernel':>16} {'measured exponent':>18} {'model':>28}")
    print(f"{'GEMM (dense)':>16} {res['gemm']['exponent']:18.2f} "
          f"{'Θ(mA mB nA): 2 at fixed nA':>28}")
    print(f"{'LR2GE':>16} {res['lr2ge']['exponent']:18.2f} "
          f"{'Θ(mA mB rAB): 2 at fixed r':>28}")
    print(f"{'LR2LR/RRQR':>16} {res['lr2lr_rrqr']['exponent']:18.2f} "
          f"{'Θ(mC (rC+rAB) rC1): 1':>28}")
    print(f"{'LR2LR/SVD':>16} {res['lr2lr_svd']['exponent']:18.2f} "
          f"{'Θ(mC (rC+rAB)^2): 1':>28}")
    print(f"{'RRQR early exit':>16} "
          f"{res['rrqr_early_exit']['exponent']:18.2f} "
          f"{'Θ(m n r): ~<2 wall-clock':>28}")


def test_tab1_lr2ge_quadratic_in_block_size(benchmark):
    rng = np.random.default_rng(0)
    res = benchmark.pedantic(lambda: sweep_lr2ge(rng), rounds=1,
                             iterations=1)
    assert 1.6 <= res["exponent"] <= 2.4


def test_tab1_lr2lr_linear_in_target_size(benchmark):
    rng = np.random.default_rng(0)
    res = benchmark.pedantic(lambda: sweep_lr2lr(rng, "rrqr"), rounds=1,
                             iterations=1)
    assert 0.6 <= res["exponent"] <= 1.5


def test_tab1_rrqr_early_exit_subquadratic(benchmark):
    rng = np.random.default_rng(0)
    res = benchmark.pedantic(lambda: sweep_rrqr_early_exit(rng), rounds=1,
                             iterations=1)
    # full QR would be ~3 (m n min(mn)); early exit must stay well below 2.5
    assert res["exponent"] <= 2.2


def test_tab1_full_report():
    res = run_experiment()
    print_report(res)
    save_json("tab1_complexity", res)


if __name__ == "__main__":
    res = run_experiment()
    print_report(res)
    save_json("tab1_complexity", res)
