"""Experiment tab2 — cost distribution per kernel (paper Table 2).

Table 2 decomposes the sequential factorization of Atmosmodj (τ = 1e-8)
into per-kernel costs for five configurations: Dense, Just-In-Time
{RRQR, SVD} and Minimal Memory {RRQR, SVD}, plus the solve time and the
factors' final size.

We regenerate the same table on the Atmosmodj proxy (nonsymmetric 3D
convection–diffusion).  Wall-clock seconds at 1/50th the paper's problem
size are not comparable to the paper's; the *shape* claims checked here
are the paper's qualitative findings:

* SVD compression costs far more than RRQR in both scenarios;
* LR addition (extend-add) exists only under Minimal Memory and dominates
  its cost, with SVD dramatically worse than RRQR;
* both BLR scenarios shrink the factors' final size, SVD at least as much
  as RRQR;
* the solve time follows the factor size (compressed solve is cheaper).
"""

from __future__ import annotations

import numpy as np

from common import (
    SCALE_PARAMS,
    bench_config,
    bench_scale,
    print_header,
    run_solver,
    save_json,
)

from repro.sparse.generators import convection_diffusion_3d

#: the paper's Table 2 tolerance, plus a scale-equivalent variant —
#: at 1/50th of the paper's problem size, block ranks at τ=1e-4 occupy
#: the same *relative* fraction of the block sizes that the paper's
#: τ=1e-8 ranks occupy at 1M unknowns (EXPERIMENTS.md discusses this).
TOLS = (1e-8, 1e-4)

CONFIGS = [
    ("Dense", dict(strategy="dense", kernel="rrqr")),
    ("JIT/RRQR", dict(strategy="just-in-time", kernel="rrqr")),
    ("JIT/SVD", dict(strategy="just-in-time", kernel="svd")),
    ("MM/RRQR", dict(strategy="minimal-memory", kernel="rrqr")),
    ("MM/SVD", dict(strategy="minimal-memory", kernel="svd")),
]

ROWS = [
    ("Compression", "compress"),
    ("Block factorization", "block_facto"),
    ("Panel solve", "panel_solve"),
    ("LR product", "lr_product"),
    ("LR addition", "lr_addition"),
    ("Dense update", "dense_update"),
]


def run_experiment(scale: str) -> dict:
    grid = SCALE_PARAMS[scale]["table2"]
    a = convection_diffusion_3d(grid)
    by_tol = {}
    for tol in TOLS:
        results = {}
        for name, overrides in CONFIGS:
            cfg = bench_config(scale, tolerance=tol, threads=1, **overrides)
            results[name] = run_solver(a, cfg)
        by_tol[f"{tol:.0e}"] = results
    return {"scale": scale, "grid": grid, "n": a.n, "by_tol": by_tol}


def print_report(res: dict) -> None:
    for tol_key, results in res["by_tol"].items():
        print_header(f"tab2: cost distribution on the atmosmodj proxy "
                     f"(n = {res['n']}, tau = {tol_key}, sequential)")
        names = list(results)
        print(f"{'':>22}" + "".join(f"{n:>12}" for n in names))
        print("-- factorization time (s) " + "-" * 45)
        for label, cat in ROWS:
            vals = [results[n][f"time_{cat}"] for n in names]
            print(f"{label:>22}" + "".join(f"{v:12.2f}" for v in vals))
        print(f"{'Total (wall)':>22}" + "".join(
            f"{results[n]['facto_time']:12.2f}" for n in names))
        print("-- flops (G) " + "-" * 59)
        for label, cat in ROWS:
            vals = [results[n][f"flops_{cat}"] / 1e9 for n in names]
            print(f"{label:>22}" + "".join(f"{v:12.3f}" for v in vals))
        print("-" * 72)
        print(f"{'Solve time (s)':>22}" + "".join(
            f"{results[n]['solve_time']:12.3f}" for n in names))
        print(f"{'Factors size (MB)':>22}" + "".join(
            f"{results[n]['factor_nbytes'] / 1e6:12.2f}" for n in names))
        print(f"{'Backward error':>22}" + "".join(
            f"{results[n]['backward_error']:12.1e}" for n in names))


def check_shape(res: dict) -> None:
    for tol_key, r in res["by_tol"].items():
        tol = float(tol_key)
        # LR addition only exists under Minimal Memory
        assert r["Dense"]["time_lr_addition"] == 0
        assert r["JIT/RRQR"]["time_lr_addition"] == 0
        assert r["MM/RRQR"]["time_lr_addition"] > 0
        # factors shrink under BLR; SVD compresses at least as well as RRQR
        assert r["JIT/RRQR"]["factor_nbytes"] <= r["Dense"]["factor_nbytes"]
        assert r["MM/RRQR"]["factor_nbytes"] <= r["Dense"]["factor_nbytes"]
        assert r["MM/SVD"]["factor_nbytes"] <= \
            1.05 * r["MM/RRQR"]["factor_nbytes"]
        # accuracy near tau for the BLR runs, machine precision for dense
        assert r["Dense"]["backward_error"] < 1e-12
        for name in ("JIT/RRQR", "JIT/SVD", "MM/RRQR", "MM/SVD"):
            assert r[name]["backward_error"] < tol * 1e3
    # compression must genuinely engage at the scale-equivalent tolerance
    r4 = res["by_tol"]["1e-04"]
    assert r4["MM/RRQR"]["nblocks_compressed"] > 0
    assert r4["MM/RRQR"]["factor_nbytes"] < r4["Dense"]["factor_nbytes"]
    # SVD compression costs more flops than RRQR (JIT isolates the kernel)
    assert r4["JIT/SVD"]["flops_compress"] > r4["JIT/RRQR"]["flops_compress"]


def test_tab2_cost_distribution(benchmark):
    scale = bench_scale()
    result = benchmark.pedantic(lambda: run_experiment(scale), rounds=1,
                                iterations=1)
    print_report(result)
    save_json("tab2_costs", result)
    check_shape(result)


if __name__ == "__main__":
    import sys

    scale = sys.argv[1] if len(sys.argv) > 1 else bench_scale("standard")
    result = run_experiment(scale)
    print_report(result)
    save_json("tab2_costs", result)
    check_shape(result)
