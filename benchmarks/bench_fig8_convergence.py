"""Experiment fig8 — convergence of BLR-preconditioned refinement.

Paper artifact: Figure 8 plots the backward error against the refinement
iteration (GMRES for general matrices, CG for SPD) when the solver is
preconditioned by a Minimal Memory/RRQR factorization at τ = 1e-4 and
τ = 1e-8, stopped at 20 iterations or 1e-12.

Shape expectations:

* τ = 1e-8 reaches 1e-12 within a few iterations on every matrix;
* τ = 1e-4 converges more slowly and may stall before 1e-12 within the
  20-iteration budget, but still reaches ~1e-6;
* the first iterate's error sits near the factorization tolerance.
"""

from __future__ import annotations

import numpy as np

from common import (
    bench_config,
    bench_scale,
    build_suite,
    print_header,
    run_solver,
    save_json,
)

from repro.core.solver import Solver

FIG8_TOLERANCES = (1e-4, 1e-8)


def run_experiment(scale: str) -> dict:
    suite = build_suite(scale)
    out = {"scale": scale, "matrices": {}}
    for name, (a, factotype) in suite.items():
        rng = np.random.default_rng(0)
        b = rng.standard_normal(a.n)
        rows = {}
        for tol in FIG8_TOLERANCES:
            cfg = bench_config(scale, strategy="minimal-memory",
                               kernel="rrqr", tolerance=tol,
                               factotype=factotype)
            solver = Solver(a, cfg)
            solver.factorize()
            res = solver.refine(b, tol=1e-12, maxiter=20)
            rows[f"{tol:.0e}"] = {
                "method": "cg" if cfg.is_symmetric_facto else "gmres",
                "history": [float(h) for h in res.history],
                "iterations": res.iterations,
                "converged": bool(res.converged),
            }
        out["matrices"][name] = rows
    return out


def print_report(res: dict) -> None:
    print_header("fig8: refinement convergence "
                 "(backward error per iteration, MM/RRQR preconditioner)")
    for name, rows in res["matrices"].items():
        for tol_key, r in rows.items():
            trace = " ".join(f"{h:.0e}" for h in r["history"][:10])
            more = " ..." if len(r["history"]) > 10 else ""
            print(f"{name:>12} tau={tol_key} [{r['method']}] "
                  f"({r['iterations']:>2} its): {trace}{more}")


def check_shape(res: dict) -> None:
    for name, rows in res["matrices"].items():
        h8 = rows["1e-08"]["history"]
        # tau=1e-8: a handful of iterations to 1e-11
        assert min(h8) <= 1e-11, (name, h8)
        assert rows["1e-08"]["iterations"] <= 15, name
        h4 = rows["1e-04"]["history"]
        # tau=1e-4: still makes useful progress
        assert min(h4) <= 1e-6, (name, h4)
        # errors decrease monotonically-ish (no divergence)
        assert h4[-1] <= h4[0]
        assert h8[-1] <= h8[0]


def test_fig8_convergence(benchmark):
    scale = bench_scale()
    res = benchmark.pedantic(lambda: run_experiment(scale), rounds=1,
                             iterations=1)
    print_report(res)
    save_json("fig8_convergence", res)
    check_shape(res)


if __name__ == "__main__":
    import sys

    scale = sys.argv[1] if len(sys.argv) > 1 else bench_scale("standard")
    res = run_experiment(scale)
    print_report(res)
    save_json("fig8_convergence", res)
    check_shape(res)
