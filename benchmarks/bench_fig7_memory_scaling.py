"""Experiment fig7 — memory scalability on growing 3D Laplacians.

Paper artifact: Figure 7 plots, against the Laplacian grid size, the factor
size and the total memory consumption of the dense solver and of Minimal
Memory/RRQR at three tolerances.  The paper's punchline: the dense curves
blow past the 128 GB node while MM at τ = 1e-4 fits problems 3x larger.

We sweep scaled-down grids and check the shape: the MM peak stays below
the dense peak, the gap *widens* with problem size, and looser tolerances
give flatter curves.
"""

from __future__ import annotations

import numpy as np

from common import (
    SCALE_PARAMS,
    bench_config,
    bench_scale,
    print_header,
    run_solver,
    save_json,
)

from repro.sparse.generators import laplacian_3d

FIG7_TOLERANCES = (1e-4, 1e-8, 1e-12)


def run_experiment(scale: str) -> dict:
    grids = SCALE_PARAMS[scale]["lap_sweep"]
    out = {"scale": scale, "grids": list(grids), "series": {}}
    dense_rows, mm_rows = [], {f"{t:.0e}": [] for t in FIG7_TOLERANCES}
    for nx in grids:
        a = laplacian_3d(nx)
        dense_rows.append(run_solver(
            a, bench_config(scale, strategy="dense")))
        for tol in FIG7_TOLERANCES:
            cfg = bench_config(scale, strategy="minimal-memory",
                               kernel="rrqr", tolerance=tol)
            mm_rows[f"{tol:.0e}"].append(run_solver(a, cfg))
    out["series"]["dense"] = dense_rows
    out["series"].update(mm_rows)
    return out


def print_report(res: dict) -> None:
    print_header("fig7: memory vs problem size (3D Laplacians), "
                 "factor size / tracked peak in MB")
    grids = res["grids"]
    print(f"{'grid':>6} {'n':>8} | {'dense':>15} |" + "".join(
        f" {'MM ' + key:>15} |" for key in res["series"] if key != "dense"))
    for i, nx in enumerate(grids):
        d = res["series"]["dense"][i]
        line = (f"{nx:>6} {d['n']:>8} | {d['factor_nbytes']/1e6:6.1f}/"
                f"{d['peak_nbytes']/1e6:6.1f} |")
        for key, rows in res["series"].items():
            if key == "dense":
                continue
            r = rows[i]
            line += (f" {r['factor_nbytes']/1e6:6.1f}/"
                     f"{r['peak_nbytes']/1e6:6.1f} |")
        print(line)


def check_shape(res: dict) -> None:
    dense = res["series"]["dense"]
    mm4 = res["series"]["1e-04"]
    # on the largest problem, MM@1e-4 must beat the dense peak
    assert mm4[-1]["peak_nbytes"] < dense[-1]["peak_nbytes"]
    # the absolute gap must widen with problem size
    gaps = [d["peak_nbytes"] - m["peak_nbytes"]
            for d, m in zip(dense, mm4)]
    assert gaps[-1] > gaps[0]
    # tighter tolerance => more memory, per grid
    mm12 = res["series"]["1e-12"]
    for r4, r12 in zip(mm4, mm12):
        assert r4["factor_nbytes"] <= r12["factor_nbytes"] * 1.02


def test_fig7_memory_scaling(benchmark):
    scale = bench_scale()
    res = benchmark.pedantic(lambda: run_experiment(scale), rounds=1,
                             iterations=1)
    print_report(res)
    save_json("fig7_memory_scaling", res)
    check_shape(res)


if __name__ == "__main__":
    import sys

    scale = sys.argv[1] if len(sys.argv) > 1 else bench_scale("standard")
    res = run_experiment(scale)
    print_report(res)
    save_json("fig7_memory_scaling", res)
    check_shape(res)
