"""Make the benchmark package importable when running ``pytest benchmarks/``."""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))
