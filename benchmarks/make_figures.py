"""Regenerate the paper's figures as SVG images from benchmark JSON.

Reads the ``benchmarks/results/*.json`` snapshots produced by the bench
modules and renders:

* ``fig1_structure.svg`` — the symbolic block structure of the 10³
  Laplacian (Figure 1's picture), recomputed directly;
* ``fig5a.svg`` / ``fig5b.svg`` — BLR/dense time-ratio bars with backward
  errors above each bar (Figures 5a/5b);
* ``fig6.svg`` — Minimal Memory factor-memory ratio bars (Figure 6);
* ``fig7.svg`` — memory vs Laplacian size lines (Figure 7);
* ``fig8.svg`` — convergence curves on a log scale (Figure 8).

Run the bench modules first (or ``pytest benchmarks/ --benchmark-only``),
then::

    python benchmarks/make_figures.py [outdir]
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

from common import RESULTS_DIR, TOLERANCES

from repro.analysis.charts import Series, bar_chart, line_chart
from repro.analysis.visualize import structure_to_svg
from repro.symbolic.factorization import SymbolicOptions, symbolic_factorization
from repro.sparse.generators import laplacian_3d


def _load(name: str):
    path = RESULTS_DIR / f"{name}.json"
    if not path.exists():
        print(f"  [skip] {name}: run the bench first ({path} missing)")
        return None
    return json.loads(path.read_text())


def make_fig1(outdir: Path) -> None:
    symb, _ = symbolic_factorization(
        laplacian_3d(10), SymbolicOptions(cmin=15, frat=0.08))
    out = structure_to_svg(symb, outdir / "fig1_structure.svg")
    print(f"  wrote {out}")


def make_fig5(outdir: Path) -> None:
    data = _load("fig5_performance")
    if data is None:
        return
    cats = list(data["matrices"])
    for strategy, fig in (("just-in-time", "fig5a"),
                          ("minimal-memory", "fig5b")):
        series = []
        for tol in TOLERANCES:
            key = f"{strategy}@{tol:.0e}"
            vals, labels = [], []
            for m in cats:
                rows = data["matrices"][m]
                r = rows[key]
                vals.append(r["facto_time"] / rows["dense"]["facto_time"])
                labels.append(f"{r['backward_error']:.1e}")
            series.append(Series(f"tau={tol:.0e}", vals, labels))
        out = bar_chart(outdir / f"{fig}.svg", cats, series,
                        title=f"{fig}: {strategy}/RRQR vs dense "
                              "(wall-clock ratio)",
                        ylabel="time BLR / time dense",
                        reference_line=1.0)
        print(f"  wrote {out}")


def make_fig6(outdir: Path) -> None:
    data = _load("fig6_memory")
    if data is None:
        return
    cats = list(data["matrices"])
    series = []
    for kernel in ("rrqr", "svd"):
        for tol in TOLERANCES:
            key = f"{kernel}@{tol:.0e}"
            vals, labels = [], []
            for m in cats:
                r = data["matrices"][m][key]
                vals.append(r["memory_ratio"])
                labels.append(f"{r['backward_error']:.0e}")
            series.append(Series(f"{kernel} {tol:.0e}", vals, labels))
    out = bar_chart(outdir / "fig6.svg", cats, series,
                    title="fig6: Minimal Memory factor size / dense",
                    ylabel="memory BLR / memory dense",
                    reference_line=1.0, width=1100)
    print(f"  wrote {out}")


def make_fig7(outdir: Path) -> None:
    data = _load("fig7_memory_scaling")
    if data is None:
        return
    grids = data["grids"]
    xs = [g ** 3 for g in grids]
    series = []
    for key, rows in data["series"].items():
        name = "dense" if key == "dense" else f"MM {key}"
        series.append(Series(f"{name} (factors)",
                             [r["factor_nbytes"] / 1e6 for r in rows]))
        series.append(Series(f"{name} (peak)",
                             [r["peak_nbytes"] / 1e6 for r in rows]))
    out = line_chart(outdir / "fig7.svg", xs, series,
                     title="fig7: memory vs 3D Laplacian size",
                     xlabel="unknowns", ylabel="MB")
    print(f"  wrote {out}")


def make_fig8(outdir: Path) -> None:
    data = _load("fig8_convergence")
    if data is None:
        return
    series = []
    maxlen = 0
    for m, rows in data["matrices"].items():
        for tol_key, r in rows.items():
            hist = [max(h, 1e-17) for h in r["history"]]
            maxlen = max(maxlen, len(hist))
            series.append(Series(f"{m} {tol_key}", hist))
    # pad histories so every series spans the same x grid
    for s in series:
        s.values = list(s.values) + [None] * (maxlen - len(s.values))
    xs = list(range(maxlen))
    out = line_chart(outdir / "fig8.svg", xs, series,
                     title="fig8: refinement convergence "
                           "(MM/RRQR preconditioner)",
                     xlabel="iteration", ylabel="backward error",
                     log_y=True, height=560)
    print(f"  wrote {out}")


def main(outdir: Path) -> None:
    outdir.mkdir(parents=True, exist_ok=True)
    print(f"rendering figures into {outdir}")
    make_fig1(outdir)
    make_fig5(outdir)
    make_fig6(outdir)
    make_fig7(outdir)
    make_fig8(outdir)


if __name__ == "__main__":
    target = Path(sys.argv[1]) if len(sys.argv) > 1 else \
        Path(__file__).resolve().parent / "figures"
    main(target)
