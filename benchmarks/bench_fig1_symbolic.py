"""Experiment fig1 — symbolic factorization of a 10x10x10 Laplacian.

Paper artifact: Figure 1 shows the symbolic block structure of a 10³
Laplacian partitioned with Scotch, and §1 states that the TSP reordering
"divides by more than two the number of off-diagonal blocks".  We rebuild
the exact same workload (the one paper experiment small enough to run at
its true size) and report the supernode partition and off-diagonal block
counts with and without the intra-supernode reordering.

Run directly for the table; under pytest the analysis step is timed.
"""

from __future__ import annotations

from common import print_header, save_json

from repro.sparse.generators import laplacian_3d
from repro.symbolic.factorization import SymbolicOptions, symbolic_factorization

#: the paper's exact workload and Scotch settings
GRID = 10
OPTS = dict(cmin=15, frat=0.08, split_size=256, split_min=128,
            compress_min_width=128, compress_min_height=20)


def run_experiment() -> dict:
    a = laplacian_3d(GRID)
    rows = {}
    for reorder in (False, True):
        opts = SymbolicOptions(reorder_supernodes=reorder, **OPTS)
        symb, _ = symbolic_factorization(a, opts)
        s = symb.summary()
        rows["tsp" if reorder else "plain"] = s
    return {"n": GRID ** 3, "rows": rows}


def print_report(result: dict) -> None:
    print_header(f"fig1: symbolic structure of the {GRID}^3 Laplacian "
                 f"(n = {result['n']})")
    print(f"{'variant':>10} {'cblks':>7} {'off-blocks':>11} "
          f"{'nnz(blocks)':>12} {'max width':>10}")
    for name, s in result["rows"].items():
        print(f"{name:>10} {s['ncblk']:>7} {s['off_blocks']:>11} "
              f"{s['nnz_blocks']:>12} {s['max_width']:>10}")
    plain = result["rows"]["plain"]["off_blocks"]
    tsp = result["rows"]["tsp"]["off_blocks"]
    print(f"\nreordering gain: {plain / max(tsp, 1):.2f}x fewer "
          f"off-diagonal blocks (paper: >2x on large matrices)")


def test_fig1_symbolic_structure(benchmark):
    a = laplacian_3d(GRID)
    opts = SymbolicOptions(reorder_supernodes=True, **OPTS)
    symb, perm = benchmark.pedantic(
        lambda: symbolic_factorization(a, opts), rounds=3, iterations=1)
    s = symb.summary()
    # shape assertions: sane partition of the 1000-vertex problem
    assert s["n"] == 1000
    assert 10 <= s["ncblk"] <= 400
    assert s["max_width"] >= 50  # the top separator is ~a 10x10 plane

    result = run_experiment()
    print_report(result)
    save_json("fig1_symbolic", result)
    # the reordering must not increase block count
    assert result["rows"]["tsp"]["off_blocks"] <= \
        result["rows"]["plain"]["off_blocks"]


if __name__ == "__main__":
    res = run_experiment()
    print_report(res)
    save_json("fig1_symbolic", res)
