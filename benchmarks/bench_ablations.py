"""Ablation studies of the design choices DESIGN.md calls out.

Not a paper artifact per se, but each knob corresponds to a claim in the
paper's text:

* **TSP reordering** (§1 / [21]: "divides by more than two the number of
  off-diagonal blocks") — off-diagonal block count and factorization time
  with and without the intra-supernode reordering;
* **amalgamation** (Scotch ``frat`` = 0.08): block count / time with and
  without column aggregation;
* **LUAR-like accumulation** (§5, BLR-MUMPS comparison): number of
  extend-add recompressions and time with grouped updates;
* **threaded scheduler** ([23]): speedup of the dependency-driven engine
  over the sequential loop.
"""

from __future__ import annotations

import time

import numpy as np

from common import (
    SCALE_PARAMS,
    bench_config,
    bench_scale,
    print_header,
    run_solver,
    save_json,
)

from repro import Solver
from repro.sparse.generators import laplacian_3d


def ablate_reordering(scale: str) -> dict:
    grid = SCALE_PARAMS[scale]["lap"]
    a = laplacian_3d(grid)
    out = {}
    for flag in (False, True):
        cfg = bench_config(scale, strategy="minimal-memory", tolerance=1e-8,
                           reorder_supernodes=flag)
        solver = Solver(a, cfg)
        solver.analyze()
        rec = run_solver(a, cfg)
        rec["off_blocks"] = solver.symbolic.total_off_blocks()
        out["tsp" if flag else "plain"] = rec
    return out


def ablate_amalgamation(scale: str) -> dict:
    grid = SCALE_PARAMS[scale]["lap"]
    a = laplacian_3d(grid)
    out = {}
    for frat in (0.0, 0.08, 0.3):
        cfg = bench_config(scale, strategy="dense", frat=frat)
        solver = Solver(a, cfg)
        solver.analyze()
        rec = run_solver(a, cfg)
        rec["ncblk"] = solver.symbolic.ncblk
        rec["off_blocks"] = solver.symbolic.total_off_blocks()
        out[f"frat={frat}"] = rec
    return out


def ablate_accumulation(scale: str) -> dict:
    grid = SCALE_PARAMS[scale]["lap"]
    a = laplacian_3d(grid)
    out = {}
    for flag in (False, True):
        cfg = bench_config(scale, strategy="minimal-memory", tolerance=1e-4,
                           accumulate_updates=flag)
        solver = Solver(a, cfg)
        stats = solver.factorize()
        out["luar" if flag else "per-update"] = {
            "facto_time": stats.total_time,
            "lr_addition_calls": stats.kernels.call_count("lr_addition"),
            "lr_addition_time": stats.kernels.time("lr_addition"),
            "memory_ratio": stats.memory_ratio,
        }
    return out


def ablate_left_looking(scale: str) -> dict:
    """§4.3's proposal: left-looking JIT trims the dense-structure peak."""
    grid = SCALE_PARAMS[scale]["lap"]
    a = laplacian_3d(grid)
    out = {}
    for ll in (False, True):
        cfg = bench_config(scale, strategy="just-in-time", tolerance=1e-4,
                           left_looking=ll)
        solver = Solver(a, cfg)
        stats = solver.factorize()
        out["left-looking" if ll else "right-looking"] = {
            "peak_nbytes": stats.peak_nbytes,
            "factor_nbytes": stats.factor_nbytes,
            "facto_time": stats.total_time,
        }
    return out


def ablate_kernels(scale: str) -> dict:
    """All four compression kernel families on the same MM factorization."""
    grid = SCALE_PARAMS[scale]["lap"]
    a = laplacian_3d(grid)
    out = {}
    for kernel in ("rrqr", "svd", "rsvd", "aca"):
        cfg = bench_config(scale, strategy="minimal-memory", kernel=kernel,
                           tolerance=1e-4)
        rec = run_solver(a, cfg)
        out[kernel] = {k: rec[k] for k in ("facto_time", "memory_ratio",
                                           "backward_error",
                                           "nblocks_compressed")}
    return out


def ablate_ordering(scale: str) -> dict:
    """Algebraic (level-set) vs geometric (plane) nested dissection."""
    from repro.ordering.geometric import grid_coords

    grid = SCALE_PARAMS[scale]["lap"]
    a = laplacian_3d(grid)
    coords = grid_coords(grid, grid, grid)
    out = {}
    for ordering in ("nested-dissection", "geometric"):
        cfg = bench_config(scale, strategy="minimal-memory", tolerance=1e-4,
                           ordering=ordering)
        solver = Solver(a, cfg,
                        coords=coords if ordering == "geometric" else None)
        solver.analyze()
        stats = solver.factorize()
        out[ordering] = {
            "off_blocks": solver.symbolic.total_off_blocks(),
            "nnz_blocks": solver.symbolic.nnz(),
            "memory_ratio": stats.memory_ratio,
            "facto_time": stats.total_time,
        }
    return out


def ablate_wavenumber(scale: str) -> dict:
    """Compressibility vs physics: Helmholtz ranks grow with wavenumber.

    The well-known limitation of low-rank methods on oscillatory operators
    — an extension experiment beyond the paper's elliptic suite.
    """
    from repro.sparse.generators import helmholtz_3d

    grid = max(12, SCALE_PARAMS[scale]["lap"] - 4)
    out = {}
    for k in (0.0, 0.5, 1.0, 1.5):
        a = helmholtz_3d(grid, wavenumber=k)
        cfg = bench_config(scale, strategy="minimal-memory", kernel="rrqr",
                           tolerance=1e-4, factotype="ldlt")
        solver = Solver(a, cfg)
        stats = solver.factorize()
        out[f"k={k}"] = {
            "memory_ratio": stats.memory_ratio,
            "nblocks_compressed": stats.nblocks_compressed,
        }
    return out


def ablate_threads(scale: str) -> dict:
    grid = SCALE_PARAMS[scale]["lap"]
    a = laplacian_3d(grid)
    out = {}
    for nthreads in (1, 2, 4):
        cfg = bench_config(scale, strategy="dense", threads=nthreads)
        solver = Solver(a, cfg)
        solver.analyze()
        t0 = time.perf_counter()
        solver.factorize()
        out[f"threads={nthreads}"] = time.perf_counter() - t0
    return out


def run_experiment(scale: str) -> dict:
    return {
        "scale": scale,
        "reordering": ablate_reordering(scale),
        "amalgamation": ablate_amalgamation(scale),
        "accumulation": ablate_accumulation(scale),
        "left_looking": ablate_left_looking(scale),
        "kernels": ablate_kernels(scale),
        "ordering": ablate_ordering(scale),
        "wavenumber": ablate_wavenumber(scale),
        "threads": ablate_threads(scale),
    }


def print_report(res: dict) -> None:
    print_header("ablations")
    r = res["reordering"]
    print(f"TSP reordering : off-blocks {r['plain']['off_blocks']} -> "
          f"{r['tsp']['off_blocks']}, "
          f"facto {r['plain']['facto_time']:.2f}s -> "
          f"{r['tsp']['facto_time']:.2f}s")
    print("amalgamation   : " + ", ".join(
        f"{k}: {v['ncblk']} cblks / {v['off_blocks']} blocks / "
        f"{v['facto_time']:.2f}s" for k, v in res["amalgamation"].items()))
    a = res["accumulation"]
    print(f"LUAR grouping  : recompressions "
          f"{a['per-update']['lr_addition_calls']} -> "
          f"{a['luar']['lr_addition_calls']}, lr-add time "
          f"{a['per-update']['lr_addition_time']:.2f}s -> "
          f"{a['luar']['lr_addition_time']:.2f}s")
    ll = res["left_looking"]
    print(f"left-looking   : JIT peak "
          f"{ll['right-looking']['peak_nbytes'] / 1e6:.1f}MB -> "
          f"{ll['left-looking']['peak_nbytes'] / 1e6:.1f}MB "
          f"(factors {ll['left-looking']['factor_nbytes'] / 1e6:.1f}MB)")
    print("kernel families: " + ", ".join(
        f"{k}: {v['facto_time']:.1f}s/mem {v['memory_ratio']:.3f}/"
        f"err {v['backward_error']:.0e}"
        for k, v in res["kernels"].items()))
    o = res["ordering"]
    print("ordering       : " + ", ".join(
        f"{k}: {v['off_blocks']} blocks / nnz {v['nnz_blocks']} / "
        f"mem {v['memory_ratio']:.3f}" for k, v in o.items()))
    print("helmholtz k    : " + ", ".join(
        f"{k}: mem {v['memory_ratio']:.3f} ({v['nblocks_compressed']} lr)"
        for k, v in res["wavenumber"].items()))
    t = res["threads"]
    base = t["threads=1"]
    print("scheduler      : " + ", ".join(
        f"{k}: {v:.2f}s ({base / v:.2f}x)" for k, v in t.items()))


def check_shape(res: dict) -> None:
    r = res["reordering"]
    assert r["tsp"]["off_blocks"] <= r["plain"]["off_blocks"]
    am = res["amalgamation"]
    assert am["frat=0.08"]["ncblk"] <= am["frat=0.0"]["ncblk"]
    assert am["frat=0.3"]["ncblk"] <= am["frat=0.08"]["ncblk"]
    acc = res["accumulation"]
    assert acc["luar"]["lr_addition_calls"] <= \
        acc["per-update"]["lr_addition_calls"]
    ll = res["left_looking"]
    assert ll["left-looking"]["peak_nbytes"] <= \
        ll["right-looking"]["peak_nbytes"]
    for k, v in res["kernels"].items():
        assert v["memory_ratio"] <= 1.0 + 1e-9, k
        assert v["backward_error"] < 1e-1, k
    o = res["ordering"]
    assert o["geometric"]["off_blocks"] <= \
        o["nested-dissection"]["off_blocks"]
    # oscillatory physics hurts compression: memory grows with k
    wv = res["wavenumber"]
    assert wv["k=0.0"]["memory_ratio"] <= wv["k=1.5"]["memory_ratio"] + 0.02


def test_ablations(benchmark):
    scale = bench_scale()
    res = benchmark.pedantic(lambda: run_experiment(scale), rounds=1,
                             iterations=1)
    print_report(res)
    save_json("ablations", res)
    check_shape(res)


if __name__ == "__main__":
    import sys

    scale = sys.argv[1] if len(sys.argv) > 1 else bench_scale("standard")
    res = run_experiment(scale)
    print_report(res)
    save_json("ablations", res)
    check_shape(res)
