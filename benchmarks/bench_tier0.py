"""Tier-0 performance tracker: one fixed laptop-scale problem per dtype.

Unlike the paper-artifact benches (Tables 1/2, Figures 5-8), this harness
exists to track the *trajectory* of the solver's performance across PRs: a
single fixed workload — the 16³ 3D Laplacian under the Just-In-Time
strategy at τ=1e-6 — factored and solved in float64, float32, and float64
with mixed-precision float32 storage.  It emits ``BENCH_tier0.json`` at the
repository root so CI (and humans diffing two commits) can compare factor
time, solve time, and compressed factor bytes without re-deriving a
configuration.

Run directly::

    PYTHONPATH=src python benchmarks/bench_tier0.py
"""

from __future__ import annotations

import json
import platform
import time
from pathlib import Path

import numpy as np

from repro import Solver, SolverConfig
from repro.sparse.generators import laplacian_3d

#: fixed workload: 16^3 Laplacian, JIT, τ=1e-6 (compare across commits!)
GRID = 16
TOLERANCE = 1e-6

#: (label, config overrides) — the tracked precision variants
VARIANTS = (
    ("float64", dict()),
    ("float32", dict(dtype="float32")),
    ("float64+float32-storage", dict(storage_dtype="float32")),
)


def _config(**overrides) -> SolverConfig:
    return SolverConfig.laptop_scale(
        strategy="just-in-time", factotype="lu", tolerance=TOLERANCE,
        rank_ratio=1.0, **overrides)


def run_variant(a, label: str, overrides: dict) -> dict:
    solver = Solver(a, _config(**overrides))
    solver.analyze()
    t0 = time.perf_counter()
    stats = solver.factorize()
    facto_time = time.perf_counter() - t0
    b = np.ones(a.n)
    t0 = time.perf_counter()
    x = solver.solve(b)
    solve_time = time.perf_counter() - t0
    return {
        "label": label,
        "dtype": str(solver.factor.dtype),
        "storage_dtype": (str(solver.factor.storage_dtype)
                          if solver.factor.storage_dtype is not None
                          else None),
        "facto_time_s": facto_time,
        "solve_time_s": solve_time,
        "factor_nbytes": int(stats.factor_nbytes),
        "dense_factor_nbytes": int(stats.dense_factor_nbytes),
        "peak_nbytes": int(stats.peak_nbytes),
        "backward_error": float(solver.backward_error(x, b)),
    }


def main() -> Path:
    a = laplacian_3d(GRID)
    results = [run_variant(a, label, ov) for label, ov in VARIANTS]
    payload = {
        "bench": "tier0",
        "workload": f"laplacian_3d({GRID})",
        "n": a.n,
        "nnz": a.nnz,
        "strategy": "just-in-time",
        "tolerance": TOLERANCE,
        "python": platform.python_version(),
        "results": results,
    }
    path = Path(__file__).resolve().parent.parent / "BENCH_tier0.json"
    with open(path, "w") as fh:
        json.dump(payload, fh, indent=2)
    w = max(len(r["label"]) for r in results)
    print(f"{'variant':>{w}} {'facto(s)':>9} {'solve(s)':>9} "
          f"{'factor MB':>10} {'backward':>10}")
    for r in results:
        print(f"{r['label']:>{w}} {r['facto_time_s']:9.2f} "
              f"{r['solve_time_s']:9.3f} {r['factor_nbytes'] / 1e6:10.2f} "
              f"{r['backward_error']:10.1e}")
    print(f"-> {path}")
    return path


if __name__ == "__main__":
    main()
