"""Tier-0 performance tracker: one fixed laptop-scale problem per dtype.

Unlike the paper-artifact benches (Tables 1/2, Figures 5-8), this harness
exists to track the *trajectory* of the solver's performance across PRs: a
single fixed workload — the 16³ 3D Laplacian under the Just-In-Time
strategy at τ=1e-6 — factored and solved in float64, float32, and float64
with mixed-precision float32 storage.

Each run *appends* a timestamped record to the ``history`` array of
``BENCH_tier0.json`` at the repository root, so the file accumulates the
performance trajectory across commits; ``tools/benchdiff`` compares the
last entries of two such files (CI diffs the fresh run against the
committed baseline).  A pre-history file (single ``results`` layout) is
migrated in place on first touch.

Run directly::

    PYTHONPATH=src python benchmarks/bench_tier0.py [--report run.json]

``--report`` additionally re-runs the float64 variant with a telemetry
bus attached and writes the full ``RunReport`` artifact (rendered by
``python -m repro report``).
"""

from __future__ import annotations

import argparse
import json
import platform
import time
from datetime import datetime, timezone
from pathlib import Path
from typing import Any, Dict, List, Optional

import numpy as np

from repro import Solver, SolverConfig
from repro.sparse.generators import laplacian_3d

#: fixed workload: 16^3 Laplacian, JIT, τ=1e-6 (compare across commits!)
GRID = 16
TOLERANCE = 1e-6

#: keep at most this many history records (oldest dropped first)
HISTORY_LIMIT = 200

#: (label, config overrides) — the tracked precision variants plus the
#: BLR variant-engine ablation (every explicit loop order + adaptive)
VARIANTS = (
    ("float64", dict()),
    ("float32", dict(dtype="float32")),
    ("float64+float32-storage", dict(storage_dtype="float32")),
    ("float64-variant-cuf", dict(variant="cuf")),
    ("float64-variant-ucf", dict(variant="ucf")),
    ("float64-variant-ufc", dict(variant="ufc")),
    ("float64-variant-fuc", dict(variant="fuc")),
    ("float64-adaptive", dict(strategy="adaptive")),
    ("float64-ldlt-pivot", dict(factotype="ldlt", pivoting="threshold")),
)


def _config(**overrides: Any) -> SolverConfig:
    base: Dict[str, Any] = dict(
        strategy="just-in-time", factotype="lu", tolerance=TOLERANCE,
        rank_ratio=1.0)
    base.update(overrides)
    return SolverConfig.laptop_scale(**base)


#: panel width of the multi-RHS variant (compare across commits!)
MULTIRHS_K = 16


def run_variant(a: Any, label: str, overrides: Dict[str, Any]) -> dict:
    solver = Solver(a, _config(**overrides))
    solver.analyze()
    t0 = time.perf_counter()
    stats = solver.factorize()
    facto_time = time.perf_counter() - t0
    b = np.ones(a.n)
    t0 = time.perf_counter()
    x = solver.solve(b)
    solve_time = time.perf_counter() - t0
    return {
        "label": label,
        "dtype": str(solver.factor.dtype),
        "storage_dtype": (str(solver.factor.storage_dtype)
                          if solver.factor.storage_dtype is not None
                          else None),
        "facto_time_s": facto_time,
        "solve_time_s": solve_time,
        "factor_nbytes": int(stats.factor_nbytes),
        "dense_factor_nbytes": int(stats.dense_factor_nbytes),
        "peak_nbytes": int(stats.peak_nbytes),
        "backward_error": float(solver.backward_error(x, b)),
    }


def run_multirhs(a: Any, k: int = MULTIRHS_K) -> dict:
    """Blocked ``(n, k)`` solve vs ``k`` sequential single-RHS solves.

    The reported ``multirhs_speedup`` (sequential / blocked wall-clock)
    is gated by ``tools/benchdiff`` — a blocked solve that decays below
    the floor (3x) fails the bench regression job.
    """
    solver = Solver(a, _config())
    solver.factorize()
    rng = np.random.default_rng(0)
    b = rng.standard_normal((a.n, k))
    solver.solve(b[:, :1])  # warm the solve path out of the timing
    t0 = time.perf_counter()
    x = solver.solve(b)
    blocked_time = time.perf_counter() - t0
    t0 = time.perf_counter()
    cols = [solver.solve(np.ascontiguousarray(b[:, j])) for j in range(k)]
    seq_time = time.perf_counter() - t0
    # the blocked panel must be the per-column solves, bit for bit
    for j in range(k):
        if not np.array_equal(x[:, j], cols[j]):
            raise AssertionError(
                f"blocked column {j} differs from the single-RHS solve")
    err = max(
        float(np.linalg.norm(a.matvec(x[:, j]) - b[:, j])
              / np.linalg.norm(b[:, j]))
        for j in range(k))
    return {
        "label": f"float64-multirhs-k{k}",
        "dtype": str(solver.factor.dtype),
        "storage_dtype": None,
        "nrhs": k,
        "solve_time_s": blocked_time,
        "solve_seq_time_s": seq_time,
        "multirhs_speedup": seq_time / blocked_time,
        "backward_error": err,
    }


def migrate(payload: Dict[str, Any]) -> Dict[str, Any]:
    """Convert a pre-history single-run file into the history layout.

    The old file's ``results`` (and its ``python`` stamp) become history
    entry zero with a ``null`` timestamp — the run date was never
    recorded, and inventing one would corrupt the trajectory.
    """
    if "history" in payload:
        return payload
    entry = {
        "timestamp": None,
        "python": payload.pop("python", None),
        "results": payload.pop("results", []),
    }
    payload["history"] = [entry]
    return payload


def load_history(path: Path) -> Dict[str, Any]:
    """Load (and migrate if needed) the bench file; fresh dict if absent."""
    if path.exists():
        return migrate(json.loads(path.read_text(encoding="utf-8")))
    return {"history": []}


def write_run_report(a: Any, path: Path) -> Path:
    """Re-run the float64 variant with telemetry + span profiler on;
    write a RunReport (its ``profile`` section feeds ``repro
    diff-report`` and the benchdiff guilty-phase attribution)."""
    from repro.analysis.report import save_run_report
    from repro.runtime.spans import SpanProfiler
    from repro.runtime.telemetry import Telemetry

    telemetry = Telemetry()
    cfg = _config(telemetry=telemetry,
                  profiler=SpanProfiler(telemetry=telemetry))
    solver = Solver(a, cfg)
    solver.factorize()
    b = np.ones(a.n)
    x = solver.solve(b)
    res = solver.refine(b, x0=x)
    report = solver.run_report(
        workload=f"laplacian_3d({GRID})",
        backward_error=float(res.backward_error))
    return save_run_report(report, path)


def main(argv: Optional[List[str]] = None) -> Path:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--report", metavar="FILE",
                        help="also write a telemetry-enabled RunReport "
                             "for the float64 variant")
    parser.add_argument("--output", metavar="FILE", default=None,
                        help="bench history file (default: repo-root "
                             "BENCH_tier0.json)")
    args = parser.parse_args(argv)

    a = laplacian_3d(GRID)
    results = [run_variant(a, label, ov) for label, ov in VARIANTS]
    results.append(run_multirhs(a))

    path = (Path(args.output) if args.output else
            Path(__file__).resolve().parent.parent / "BENCH_tier0.json")
    payload = load_history(path)
    payload.update({
        "bench": "tier0",
        "workload": f"laplacian_3d({GRID})",
        "n": a.n,
        "nnz": a.nnz,
        "strategy": "just-in-time",
        "tolerance": TOLERANCE,
    })
    payload["history"].append({
        "timestamp": datetime.now(timezone.utc).isoformat(),
        "python": platform.python_version(),
        "results": results,
    })
    payload["history"] = payload["history"][-HISTORY_LIMIT:]
    with open(path, "w") as fh:
        json.dump(payload, fh, indent=2)
        fh.write("\n")

    w = max(len(r["label"]) for r in results)
    print(f"{'variant':>{w}} {'facto(s)':>9} {'solve(s)':>9} "
          f"{'factor MB':>10} {'backward':>10}")
    for r in results:
        if "facto_time_s" in r:
            print(f"{r['label']:>{w}} {r['facto_time_s']:9.2f} "
                  f"{r['solve_time_s']:9.3f} "
                  f"{r['factor_nbytes'] / 1e6:10.2f} "
                  f"{r['backward_error']:10.1e}")
        else:
            print(f"{r['label']:>{w}} {'-':>9} {r['solve_time_s']:9.3f} "
                  f"{'-':>10} {r['backward_error']:10.1e}  "
                  f"({r['multirhs_speedup']:.1f}x vs {r['nrhs']} "
                  f"sequential solves)")
    print(f"-> {path} ({len(payload['history'])} history entries)")

    if args.report:
        rpath = write_run_report(a, Path(args.report))
        print(f"run report -> {rpath}")
    return path


if __name__ == "__main__":
    main()
