"""Shared infrastructure for the benchmark harness.

Every paper artifact (Table 1/2, Figures 1 and 5-8) has a bench module that
can run two ways:

* under pytest (``pytest benchmarks/ --benchmark-only``): a small
  representative configuration is timed with pytest-benchmark and the
  artifact's table is printed and written as JSON;
* directly (``python benchmarks/bench_*.py [scale]``): the full sweep at
  ``quick`` / ``standard`` / ``full`` scale, producing the numbers recorded
  in EXPERIMENTS.md.

The scale also honours the ``REPRO_BENCH_SCALE`` environment variable.
Problem sizes are scaled-down proxies of the paper's suite (DESIGN.md §3):
the paper runs 1M+ unknowns on 24 Xeon cores; we run 1.7k-33k unknowns in
pure Python and compare *ratios*, not absolute seconds.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path
from typing import Callable, Dict, Optional, Tuple

import numpy as np

from repro import Solver, SolverConfig
from repro.sparse.csc import CSCMatrix
from repro.sparse.generators import (
    anisotropic_laplacian_3d,
    convection_diffusion_3d,
    elasticity_3d,
    heterogeneous_poisson_3d,
    laplacian_3d,
)

RESULTS_DIR = Path(__file__).resolve().parent / "results"

#: per-scale grid and blocking parameters for the six-matrix suite.
#: ``split``/``wmin``/``hmin`` scale the paper's 256/128-wide tiles and
#: 128/20 compression thresholds down with the problem size so that the
#: block-to-separator proportions stay comparable.
SCALE_PARAMS = {
    "quick": dict(lap=16, atmos=14, audi=6, hook=(14, 4, 4), serena=14,
                  geo=14, lap_sweep=(10, 12, 14, 16), table2=16,
                  split=(48, 24), wmin=24, hmin=6),
    "standard": dict(lap=20, atmos=20, audi=8, hook=(24, 6, 6), serena=20,
                     geo=20, lap_sweep=(12, 16, 20, 24), table2=24,
                     split=(64, 32), wmin=32, hmin=8),
    "full": dict(lap=28, atmos=28, audi=11, hook=(36, 8, 8), serena=28,
                 geo=28, lap_sweep=(16, 20, 24, 28, 32), table2=32,
                 split=(128, 64), wmin=48, hmin=16),
}

#: the paper's tolerance sweep
TOLERANCES = (1e-4, 1e-8, 1e-12)


def bench_scale(default: str = "quick") -> str:
    scale = os.environ.get("REPRO_BENCH_SCALE", default)
    if scale not in SCALE_PARAMS:
        raise ValueError(f"unknown scale {scale!r}; "
                         f"choose from {sorted(SCALE_PARAMS)}")
    return scale


def build_suite(scale: str) -> Dict[str, Tuple[CSCMatrix, str]]:
    """The six-matrix evaluation suite: (matrix, factotype) per name.

    Names map to the paper's matrices as documented in DESIGN.md §3:
    lap120→lap, Atmosmodj→atmosmodj, Audi→audi, Hook→hook, Serena→serena,
    Geo1438→geo1438 (all but ``lap`` are synthetic proxies).
    """
    p = SCALE_PARAMS[scale]
    return {
        "lap": (laplacian_3d(p["lap"]), "lu"),
        "atmosmodj": (convection_diffusion_3d(p["atmos"]), "lu"),
        "audi": (elasticity_3d(p["audi"]), "cholesky"),
        "hook": (elasticity_3d(*p["hook"]), "cholesky"),
        "serena": (heterogeneous_poisson_3d(p["serena"]), "cholesky"),
        "geo1438": (anisotropic_laplacian_3d(p["geo"]), "lu"),
    }


def bench_config(scale: str, **overrides) -> SolverConfig:
    """Solver configuration used by the benches: the paper's §4 setup with
    the tile/threshold sizes scaled down per SCALE_PARAMS."""
    p = SCALE_PARAMS[scale]
    base = dict(split_size=p["split"][0], split_min=p["split"][1],
                compress_min_width=p["wmin"], compress_min_height=p["hmin"],
                rank_ratio=0.5, cmin=15, frat=0.08)
    base.update(overrides)
    return SolverConfig(**base)


def run_solver(a: CSCMatrix, cfg: SolverConfig,
               rhs_seed: int = 0) -> Dict[str, float]:
    """Factorize + solve once; return the record the bench tables print."""
    rng = np.random.default_rng(rhs_seed)
    b = rng.standard_normal(a.n)
    solver = Solver(a, cfg)
    solver.analyze()
    t0 = time.perf_counter()
    stats = solver.factorize()
    facto_time = time.perf_counter() - t0
    t0 = time.perf_counter()
    x = solver.solve(b)
    solve_time = time.perf_counter() - t0
    out = {
        "n": a.n,
        "strategy": cfg.strategy,
        "kernel": cfg.kernel,
        "tolerance": cfg.tolerance,
        "facto_time": facto_time,
        "solve_time": solve_time,
        "backward_error": solver.backward_error(x, b),
        "factor_nbytes": stats.factor_nbytes,
        "dense_factor_nbytes": stats.dense_factor_nbytes,
        "peak_nbytes": stats.peak_nbytes,
        "memory_ratio": stats.memory_ratio,
        "total_flops": stats.kernels.total_flops(),
        "nblocks_compressed": stats.nblocks_compressed,
        "nblocks_dense": stats.nblocks_dense,
    }
    for cat in ("compress", "block_facto", "panel_solve", "lr_product",
                "lr_addition", "dense_update"):
        out[f"time_{cat}"] = stats.kernels.time(cat)
        out[f"flops_{cat}"] = stats.kernels.flop(cat)
    return out


def save_json(name: str, payload) -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{name}.json"
    with open(path, "w") as fh:
        json.dump(payload, fh, indent=2, default=float)
    return path


def print_header(title: str) -> None:
    print()
    print("=" * 72)
    print(title)
    print("=" * 72)
